"""Tests for the observability stack (repro.obs): metrics, traces, events."""

import json

import numpy as np
import pytest

from repro.core import Learner
from repro.core.monitor import ServingMonitor
from repro.data import (
    Batch,
    GaussianMixtureConcept,
    Segment,
    stream_from_schedule,
)
from repro.models import StreamingLR
from repro.obs import (
    EVENT_TYPES,
    NULL_OBS,
    NULL_TRACER,
    AlertRaised,
    AlertResolved,
    AswDecayApplied,
    CecInvoked,
    CheckpointRejected,
    CheckpointWritten,
    CircuitOpened,
    CompositeSink,
    Counter,
    DegradedMode,
    Gauge,
    Histogram,
    JsonlSink,
    KnowledgeEvicted,
    KnowledgePreserved,
    KnowledgeReused,
    MemorySink,
    MetricsRegistry,
    Observability,
    RequestShed,
    ShiftAssessed,
    StrategySelected,
    TenantActivated,
    TenantEvicted,
    Tracer,
    WorkerRestarted,
    event_from_dict,
    read_records,
    summarize_trace,
)


def lr_factory():
    return StreamingLR(num_features=8, num_classes=3, lr=0.3, seed=0)


SAMPLE_EVENTS = [
    ShiftAssessed(batch=3, pattern="sudden", distance=1.2, severity=4.1,
                  historical_distance=None, escalated=True),
    StrategySelected(batch=3, strategy="cec", pattern="sudden",
                     fallback=False, reason=""),
    AswDecayApplied(window="short-0", arrival=12, mean_rate=0.08,
                    disorder=0.4, inversions=9, entries=4, evicted=1),
    KnowledgePreserved(batch=5, model_kind="long", disorder=0.2,
                       nbytes=4096, store_size=3),
    KnowledgeReused(batch=9, origin_batch=5, match_distance=0.3,
                    model_kind="long"),
    KnowledgeEvicted(count=4, spilled=True, store_size=4),
    CecInvoked(batch=3, clusters=3, labeled_points=120, guided_clusters=2,
               vote_margin=0.91),
    CheckpointWritten(path="/tmp/ckpt.npz", nbytes=1234, batch=7),
    CheckpointRejected(source="knowledge",
                       reason="shape mismatch for parameter 'weight'",
                       problems=2, batch=5, model_kind="long"),
    WorkerRestarted(worker=1, restarts=1, reason="crashed", resubmitted=2,
                    reseeded=True),
    DegradedMode(batch=6, mechanism="cec",
                 fallback="multi_granularity",
                 reason="cec raised ValueError"),
    CircuitOpened(mechanism="cec", failures=3, cooldown=10),
    AlertRaised(rule="degraded-rate", signal="degraded_mode", value=0.4,
                threshold=0.25, batch=12),
    AlertResolved(rule="degraded-rate", value=0.1, threshold=0.25,
                  batches_active=9, batch=21),
    TenantActivated(tenant="acme", rehydrated=True, active=7),
    TenantEvicted(tenant="acme", nbytes=2048, active=6),
    RequestShed(tenant="acme", reason="tenant-queue-full", pending=64),
]


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("hits")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("hits").inc(-1)

    def test_labels_are_independent_children(self):
        counter = Counter("hits")
        counter.labels(strategy="cec").inc()
        counter.labels(strategy="cec").inc()
        counter.labels(strategy="reuse").inc()
        assert counter.labels(strategy="cec").value == 2
        assert counter.labels(strategy="reuse").value == 1
        assert counter.value == 0

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("bad name!")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("entries")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13


class TestHistogram:
    def test_bucket_assignment(self):
        hist = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.7, 3.0, 100.0):
            hist.observe(value)
        # Cumulative counts per boundary: <=1 → 1, <=2 → 3, <=4 → 4.
        buckets = hist._value_dict()["buckets"]
        assert buckets[1.0] == 1
        assert buckets[2.0] == 3
        assert buckets[4.0] == 4
        assert hist.count == 5
        assert hist.sum == pytest.approx(106.7)

    def test_quantiles_bracket_the_data(self):
        hist = Histogram("lat", buckets=tuple(float(b) for b in range(1, 21)))
        values = np.linspace(0.5, 19.5, 200)
        for value in values:
            hist.observe(float(value))
        p50 = hist.quantile(0.5)
        p95 = hist.quantile(0.95)
        assert abs(p50 - np.percentile(values, 50)) < 1.0
        assert abs(p95 - np.percentile(values, 95)) < 1.0
        assert p50 < p95

    def test_quantile_clamped_to_observed_range(self):
        hist = Histogram("lat", buckets=(1.0, 100.0))
        hist.observe(1.5)
        # Interpolation inside (1, 100] must not report ~50; clamp to max.
        assert hist.quantile(0.99) == 1.5
        assert hist.quantile(0.0) == 1.5

    def test_empty_quantile_is_zero(self):
        assert Histogram("lat").quantile(0.5) == 0.0

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat").quantile(1.5)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(2.0, 1.0))

    def test_labeled_children_inherit_buckets(self):
        hist = Histogram("lat", buckets=(1.0, 2.0))
        child = hist.labels(strategy="cec")
        assert child.buckets == (1.0, 2.0)


class TestMetricsRegistry:
    def test_create_or_get_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", "help text").labels(strategy="cec").inc(3)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["c"]["type"] == "counter"
        assert snap["c"]["help"] == "help text"
        assert snap["c"]["series"] == [
            {"labels": {"strategy": "cec"}, "value": 3.0}
        ]
        assert snap["h"]["series"][0]["count"] == 1
        json.dumps(snap)  # snapshot must be JSON-serializable

    def test_render_text_exposition(self):
        registry = MetricsRegistry()
        registry.counter("freeway_batches_total").labels(strategy="cec").inc()
        registry.histogram("freeway_lat", buckets=(0.1, 1.0)).observe(0.05)
        text = registry.render_text()
        assert '# TYPE freeway_batches_total counter' in text
        assert 'freeway_batches_total{strategy="cec"} 1' in text
        assert 'freeway_lat_bucket{le="0.1"} 1' in text
        assert 'freeway_lat_bucket{le="+Inf"} 1' in text
        assert 'freeway_lat_count 1' in text


class TestSpans:
    def test_nesting(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner2"):
                pass
        assert len(tracer.finished) == 1
        root = tracer.finished[0]
        assert [child.name for child in root.children] == ["inner", "inner2"]
        assert [span.name for span in root.walk()] == [
            "outer", "inner", "inner2",
        ]

    def test_timing_monotonicity(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(1000))
        root = tracer.finished[0]
        inner = root.children[0]
        assert root.duration > 0.0
        assert inner.duration > 0.0
        assert root.start <= inner.start <= inner.end <= root.end
        assert inner.duration <= root.duration

    def test_attributes_and_set(self):
        tracer = Tracer()
        with tracer.span("s", batch=3) as span:
            span.set(strategy="cec")
        assert tracer.finished[0].attributes == {
            "batch": 3, "strategy": "cec",
        }

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("s"):
                raise RuntimeError("boom")
        assert tracer.finished[0].attributes["error"] == "RuntimeError"

    def test_root_spans_forwarded_to_sink(self):
        sink = MemorySink()
        tracer = Tracer(sink=sink)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert len(sink.records) == 1
        record = sink.records[0]
        assert record["kind"] == "span"
        assert record["name"] == "outer"
        assert record["children"][0]["name"] == "inner"

    def test_max_spans_bound(self):
        tracer = Tracer(max_spans=3)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        assert [span.name for span in tracer.finished] == ["s7", "s8", "s9"]

    def test_open_span_duration_is_zero(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            assert span.duration == 0.0
        assert span.duration > 0.0


class TestNullTracer:
    def test_span_is_shared_noop(self):
        one = NULL_TRACER.span("a", batch=1)
        two = NULL_TRACER.span("b")
        assert one is two  # no allocation per call

    def test_noop_behaviour(self):
        with NULL_TRACER.span("a") as span:
            span.set(strategy="cec")
        assert span.duration == 0.0
        assert span.attributes == {}
        assert NULL_TRACER.finished == []
        assert NULL_TRACER.current is None
        assert not NULL_TRACER.enabled

    def test_null_obs_disabled(self):
        assert not NULL_OBS.enabled
        assert NULL_OBS.tracer is NULL_TRACER
        NULL_OBS.emit(ShiftAssessed(batch=0, pattern="slight"))  # swallowed
        assert Observability.disabled() is NULL_OBS


class TestEvents:
    @pytest.mark.parametrize("event", SAMPLE_EVENTS,
                             ids=[type(e).__name__ for e in SAMPLE_EVENTS])
    def test_dict_round_trip(self, event):
        record = event.to_dict()
        assert record["kind"] == "event"
        assert record["type"] == event.TYPE
        assert event_from_dict(json.loads(json.dumps(record))) == event

    def test_registry_covers_every_sample(self):
        assert {e.TYPE for e in SAMPLE_EVENTS} == set(EVENT_TYPES)

    def test_unknown_type_returns_none(self):
        assert event_from_dict({"kind": "event", "type": "nope"}) is None

    def test_extra_fields_ignored(self):
        record = SAMPLE_EVENTS[0].to_dict()
        record["future_field"] = 42
        assert event_from_dict(record) == SAMPLE_EVENTS[0]


class TestSinks:
    def test_jsonl_round_trip_every_event_type(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            for event in SAMPLE_EVENTS:
                sink.emit(event)
            sink.emit({"kind": "span", "name": "s", "duration": 0.1,
                       "attributes": {}, "children": []})
            assert sink.written == len(SAMPLE_EVENTS) + 1
        events, spans = read_records(path)
        assert events == SAMPLE_EVENTS
        assert len(spans) == 1 and spans[0]["name"] == "s"

    def test_jsonl_appends(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(SAMPLE_EVENTS[0])
        with JsonlSink(path) as sink:
            sink.emit(SAMPLE_EVENTS[1])
        events, _ = read_records(path)
        assert len(events) == 2

    def test_read_records_skips_unknown_and_blank(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps(SAMPLE_EVENTS[0].to_dict()) + "\n"
            + "\n"
            + json.dumps({"kind": "event", "type": "from_the_future"}) + "\n"
        )
        events, spans = read_records(path)
        assert events == [SAMPLE_EVENTS[0]]
        assert spans == []

    def test_memory_sink_filters(self):
        sink = MemorySink()
        sink.emit(SAMPLE_EVENTS[0])
        sink.emit({"kind": "span"})
        assert sink.events == [SAMPLE_EVENTS[0]]
        assert sink.events_of(ShiftAssessed) == [SAMPLE_EVENTS[0]]
        assert sink.events_of(CecInvoked) == []

    def test_memory_sink_capacity(self):
        sink = MemorySink(capacity=2)
        for event in SAMPLE_EVENTS[:4]:
            sink.emit(event)
        assert sink.events == SAMPLE_EVENTS[2:4]

    def test_composite_fans_out(self):
        first, second = MemorySink(), MemorySink()
        CompositeSink(first, second).emit(SAMPLE_EVENTS[0])
        assert first.events == second.events == [SAMPLE_EVENTS[0]]


def drifting_stream(rng, batch_size=64):
    """Directional drift → sudden jump → two reoccurrences of old concepts."""
    concepts = {"a": GaussianMixtureConcept(3, 8, rng, scale=0.3),
                "b": GaussianMixtureConcept(3, 8, rng, scale=0.3)}
    segments = [
        Segment("a", 10, kind="directional", magnitude=0.5),
        Segment("b", 6, entry="sudden"),
        Segment("a", 6, entry="reoccurring"),
        Segment("b", 4, entry="reoccurring"),
    ]
    return stream_from_schedule(concepts, segments, batch_size, rng, 3)


class TestLearnerIntegration:
    @pytest.fixture
    def instrumented_run(self):
        rng = np.random.default_rng(7)
        obs = Observability.in_memory()
        learner = Learner(lr_factory, window_batches=4, seed=0, obs=obs)
        for batch in drifting_stream(rng):
            learner.process(batch)
        return obs

    def test_drifting_stream_emits_reuse_events(self, instrumented_run):
        reused = instrumented_run.sink.events_of(KnowledgeReused)
        assert reused, "reoccurring drift must trigger knowledge reuse"
        preserved = instrumented_run.sink.events_of(KnowledgePreserved)
        preserved_batches = {event.batch for event in preserved}
        for event in reused:
            assert event.model_kind in ("short", "long")
            assert 0 <= event.origin_batch < event.batch
            assert event.origin_batch in preserved_batches
            assert np.isfinite(event.match_distance)
            assert event.match_distance >= 0.0

    def test_every_batch_assessed_and_routed(self, instrumented_run):
        sink = instrumented_run.sink
        assessed = sink.events_of(ShiftAssessed)
        selected = sink.events_of(StrategySelected)
        assert len(assessed) == len(selected) == 26
        assert [event.batch for event in assessed] == list(range(26))
        patterns = {event.pattern for event in assessed}
        assert "sudden" in patterns or "reoccurring" in patterns
        for event in selected:
            assert event.strategy in (
                "multi_granularity", "cec", "knowledge_reuse",
            )

    def test_spans_cover_predict_and_update(self, instrumented_run):
        names = [span.name for span in instrumented_run.tracer.finished]
        assert names.count("learner.predict") == 26
        assert names.count("learner.update") == 26
        predict = next(span for span in instrumented_run.tracer.finished
                       if span.name == "learner.predict")
        assert "strategy" in predict.attributes
        assert "pattern" in predict.attributes

    def test_metrics_recorded(self, instrumented_run):
        snap = instrumented_run.registry.snapshot()
        batches = sum(series["value"]
                      for series in snap["freeway_batches_total"]["series"])
        assert batches == 26
        predict = snap["freeway_predict_seconds"]["series"]
        assert sum(series["count"] for series in predict) == 26

    def test_disabled_obs_records_nothing(self):
        rng = np.random.default_rng(7)
        learner = Learner(lr_factory, window_batches=4, seed=0)
        for batch in drifting_stream(rng):
            learner.process(batch)
        assert learner.obs is NULL_OBS
        assert len(learner.obs.registry) == 0
        assert learner.obs.tracer.finished == []

    def test_jsonl_trace_and_report_summary(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        rng = np.random.default_rng(7)
        with Observability.to_jsonl(path) as obs:
            learner = Learner(lr_factory, window_batches=4, seed=0, obs=obs)
            for batch in drifting_stream(rng):
                learner.process(batch)
        summary = summarize_trace(path)
        assert summary.num_events > 0
        assert summary.num_spans == 52  # 26 predict + 26 update roots
        assert sum(summary.strategy_counts.values()) == 26
        assert summary.reuse_hits >= 1
        assert 0.0 <= summary.reuse_hit_rate <= 1.0
        assert "learner.predict" in summary.span_latency


class TestKnowledgeEviction:
    def test_overflow_emits_evicted_events(self, rng):
        obs = Observability.in_memory()
        learner = Learner(lr_factory, window_batches=4,
                          knowledge_capacity=2, seed=0, obs=obs)
        for index in range(30):
            x = rng.normal(size=(32, 8)) + (index // 5)
            learner.process(Batch(x, rng.integers(0, 3, 32), index=index))
        evicted = obs.sink.events_of(KnowledgeEvicted)
        assert evicted, "a capacity-2 store must overflow on this stream"
        for event in evicted:
            assert event.count >= 1
            assert not event.spilled  # no spill dir configured
            assert 0 <= event.store_size <= 2


class TestMonitorEventMode:
    def test_consumes_events_and_spans(self):
        monitor = ServingMonitor(consume_events=True)
        rng = np.random.default_rng(7)
        obs = Observability(sink=monitor)
        learner = Learner(lr_factory, window_batches=4, seed=0, obs=obs)
        for batch in drifting_stream(rng):
            learner.process(batch)
        assert monitor.batches == 26
        assert sum(monitor.pattern_counts.values()) == 26
        assert monitor.reuse_events >= 1
        latency = monitor.latency_percentiles()
        assert latency["predict"]["p50"] > 0.0
        assert latency["update"]["p50"] > 0.0
        snapshot = monitor.snapshot()
        assert snapshot["batches"] == 26
        assert snapshot["rolling_accuracy"] is None  # labels never arrive
        json.dumps(snapshot)
        assert "predict p50=" in monitor.summary()

    def test_feed_mode_guards(self, rng):
        event_monitor = ServingMonitor(consume_events=True)
        with pytest.raises(RuntimeError):
            event_monitor.observe(object())
        report_monitor = ServingMonitor()
        with pytest.raises(RuntimeError):
            report_monitor.observe_event(SAMPLE_EVENTS[0])

    def test_emit_accepts_wire_dicts(self):
        monitor = ServingMonitor(consume_events=True)
        monitor.emit(StrategySelected(batch=0, strategy="cec",
                                      pattern="sudden").to_dict())
        monitor.emit({"kind": "event", "type": "unknown_future_type"})
        assert monitor.batches == 1
        assert monitor.strategy_counts["cec"] == 1


class TestFacade:
    def test_in_memory_wiring(self):
        obs = Observability.in_memory()
        assert obs.enabled
        with obs.tracer.span("s"):
            pass
        obs.emit(SAMPLE_EVENTS[0])
        assert len(obs.sink.records) == 2  # span dict + event

    def test_to_jsonl_extra_sink(self, tmp_path):
        extra = MemorySink()
        with Observability.to_jsonl(tmp_path / "t.jsonl",
                                    extra_sink=extra) as obs:
            obs.emit(SAMPLE_EVENTS[0])
        assert extra.events == [SAMPLE_EVENTS[0]]
        events, _ = read_records(tmp_path / "t.jsonl")
        assert events == [SAMPLE_EVENTS[0]]


class TestCliObservability:
    def test_run_with_trace_then_report(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "t.jsonl"
        code = main(["run", "--dataset", "electricity", "--batches", "12",
                     "--batch-size", "64", "--trace", str(trace),
                     "--metrics"])
        assert code == 0
        out = capsys.readouterr().out
        assert "freeway_batches_total" in out
        assert str(trace) in out
        events, spans = read_records(trace)
        assert events and spans

        assert main(["report", str(trace)]) == 0
        report_out = capsys.readouterr().out
        assert "predict latency by strategy" in report_out
        assert "knowledge reuse" in report_out

    def test_run_json_output(self, capsys):
        from repro.cli import main

        code = main(["run", "--dataset", "electricity", "--batches", "8",
                     "--batch-size", "64", "--json", "--metrics"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["framework"] == "freewayml"
        assert payload["batches"] == 8
        assert 0.0 <= payload["g_acc"] <= 1.0
        assert "si" in payload and "throughput" in payload
        assert isinstance(payload["accuracy_by_pattern"], dict)
        assert "freeway_batches_total" in payload["metrics"]

    def test_report_json_output(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "t.jsonl"
        assert main(["run", "--dataset", "electricity", "--batches", "8",
                     "--batch-size", "64", "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["report", str(trace), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_events"] > 0
        assert "strategy_latency" in payload
        assert "reuse_hit_rate" in payload


class TestPersistenceEvent:
    def test_checkpoint_event(self, tmp_path, rng):
        from repro.core.persistence import save_learner

        obs = Observability.in_memory()
        learner = Learner(lr_factory, window_batches=4, seed=0, obs=obs)
        for index in range(6):
            x = rng.normal(size=(32, 8))
            learner.process(Batch(x, rng.integers(0, 3, 32), index=index))
        path = tmp_path / "ckpt.npz"
        nbytes = save_learner(learner, path)
        events = obs.sink.events_of(CheckpointWritten)
        assert len(events) == 1
        assert events[0].path == str(path)
        assert events[0].nbytes == nbytes == path.stat().st_size
