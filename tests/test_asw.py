"""Tests for the adaptive streaming window (repro.core.asw, Alg. 1, Eq. 11)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AdaptiveStreamingWindow, inversion_count


def brute_force_inversions(sequence):
    count = 0
    for i in range(len(sequence)):
        for j in range(i + 1, len(sequence)):
            if sequence[i] > sequence[j]:
                count += 1
    return count


class TestInversionCount:
    def test_sorted_sequence_zero(self):
        assert inversion_count([0, 1, 2, 3]) == 0

    def test_reversed_sequence_max(self):
        assert inversion_count([3, 2, 1, 0]) == 6

    def test_single_element(self):
        assert inversion_count([5]) == 0

    def test_empty(self):
        assert inversion_count([]) == 0

    @given(st.lists(st.integers(0, 20), min_size=0, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_matches_brute_force(self, sequence):
        assert inversion_count(sequence) == brute_force_inversions(sequence)


def batch(center, n=16, d=4, rng=None, spread=0.1):
    rng = rng or np.random.default_rng(0)
    x = rng.normal(size=(n, d)) * spread + center
    y = np.zeros(n, dtype=np.int64)
    return x, y, x.mean(axis=0)


class TestWindowBasics:
    def test_add_and_count(self, rng):
        window = AdaptiveStreamingWindow(max_batches=8)
        for i in range(3):
            window.add(*batch(float(i), rng=rng))
        assert window.num_batches == 3

    def test_is_full_by_batches(self, rng):
        window = AdaptiveStreamingWindow(max_batches=2, max_items=10**9)
        window.add(*batch(0.0, rng=rng))
        assert not window.is_full
        window.add(*batch(0.0, rng=rng))
        assert window.is_full

    def test_is_full_by_items(self, rng):
        window = AdaptiveStreamingWindow(max_batches=100, max_items=30)
        window.add(*batch(0.0, n=16, rng=rng))
        assert not window.is_full
        window.add(*batch(0.0, n=16, rng=rng))
        assert window.is_full  # ~32 effective items

    def test_reset(self, rng):
        window = AdaptiveStreamingWindow()
        window.add(*batch(0.0, rng=rng))
        window.reset()
        assert window.num_batches == 0
        assert window.disorder == 0.0

    def test_label_mismatch_raises(self, rng):
        window = AdaptiveStreamingWindow()
        with pytest.raises(ValueError):
            window.add(np.zeros((4, 2)), np.zeros(3), np.zeros(2))

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveStreamingWindow(max_batches=0)
        with pytest.raises(ValueError):
            AdaptiveStreamingWindow(max_items=0)
        with pytest.raises(ValueError):
            AdaptiveStreamingWindow(base_decay=1.0)


class TestDecaySemantics:
    def test_weights_decay_monotonically(self, rng):
        window = AdaptiveStreamingWindow(max_batches=10, base_decay=0.2)
        window.add(*batch(0.0, rng=rng))
        first_weights = [window.entry_weights()[0]]
        for i in range(1, 5):
            window.add(*batch(0.1 * i, rng=rng))
            first_weights.append(window.entry_weights()[0])
        assert all(first_weights[i] > first_weights[i + 1]
                   for i in range(len(first_weights) - 1))

    def test_closer_batches_decay_less(self, rng):
        window = AdaptiveStreamingWindow(max_batches=10, base_decay=0.3)
        window.add(*batch(0.0, rng=rng))    # far from the new batch
        window.add(*batch(10.0, rng=rng))   # close to the new batch
        window.add(*batch(10.1, rng=rng))   # new batch arrives
        weights = window.entry_weights()
        assert weights[1] > weights[0]

    def test_directional_stream_has_low_disorder(self, rng):
        window = AdaptiveStreamingWindow(max_batches=20, base_decay=0.01)
        for i in range(10):
            window.add(*batch(float(i), rng=rng, spread=0.01))
        assert window.disorder < 0.2

    def test_localized_stream_has_high_disorder(self, rng):
        window = AdaptiveStreamingWindow(max_batches=30, base_decay=0.01)
        centers = rng.permutation(20) * 1.0
        for center in centers:
            window.add(*batch(center, rng=rng, spread=0.01))
        assert window.disorder > 0.3

    def test_high_disorder_decays_faster(self, rng):
        def run(centers):
            window = AdaptiveStreamingWindow(max_batches=50, base_decay=0.1)
            for center in centers:
                window.add(*batch(center, rng=np.random.default_rng(0),
                                  spread=0.01))
            return window.entry_weights().sum() / window.num_batches

        ordered = run([float(i) for i in range(12)])
        shuffled = run(list(np.random.default_rng(1).permutation(12) * 1.0))
        assert shuffled < ordered

    def test_fully_decayed_entries_evicted(self, rng):
        window = AdaptiveStreamingWindow(max_batches=100, base_decay=0.5,
                                         min_weight=0.3)
        for i in range(10):
            window.add(*batch(float(i * 3), rng=rng))
        assert window.num_batches < 10

    def test_decay_boost_accelerates(self, rng):
        slow = AdaptiveStreamingWindow(max_batches=20, base_decay=0.1)
        fast = AdaptiveStreamingWindow(max_batches=20, base_decay=0.1)
        fast.decay_boost = 2.0
        for i in range(6):
            slow.add(*batch(float(i), rng=np.random.default_rng(9)))
            fast.add(*batch(float(i), rng=np.random.default_rng(9)))
        assert fast.entry_weights().sum() < slow.entry_weights().sum()


class TestTrainingData:
    def test_full_weights_return_everything(self, rng):
        window = AdaptiveStreamingWindow(max_batches=10, base_decay=0.0)
        window.add(*batch(0.0, n=8, rng=rng))
        window.add(*batch(0.0, n=8, rng=rng))
        x, y = window.training_data()
        assert len(x) == 16

    def test_decayed_batches_contribute_fewer_rows(self, rng):
        window = AdaptiveStreamingWindow(max_batches=10, base_decay=0.4,
                                         min_weight=0.01)
        for i in range(5):
            window.add(*batch(float(i), n=20, rng=rng))
        x, _ = window.training_data()
        assert len(x) < 100  # strictly fewer than raw rows

    def test_empty_window_raises(self):
        with pytest.raises(RuntimeError):
            AdaptiveStreamingWindow().training_data()

    def test_mean_embedding_weighted(self, rng):
        window = AdaptiveStreamingWindow(max_batches=10, base_decay=0.0)
        window.add(np.zeros((4, 2)), np.zeros(4), np.array([0.0, 0.0]))
        window.add(np.zeros((4, 2)), np.zeros(4), np.array([2.0, 2.0]))
        np.testing.assert_allclose(window.mean_embedding(), [1.0, 1.0])

    def test_mean_embedding_empty_raises(self):
        with pytest.raises(RuntimeError):
            AdaptiveStreamingWindow().mean_embedding()

    def test_effective_items_tracks_decay(self, rng):
        window = AdaptiveStreamingWindow(max_batches=10, base_decay=0.3)
        window.add(*batch(0.0, n=10, rng=rng))
        assert window.effective_items == pytest.approx(10.0)
        window.add(*batch(5.0, n=10, rng=rng))
        assert window.effective_items < 20.0


class TestInversionCountImplementations:
    """The O(k log k) merge-sort count must agree with the kept O(k²) naive."""

    @given(st.lists(st.integers(-50, 50), min_size=0, max_size=60))
    @settings(max_examples=150, deadline=None)
    def test_merge_sort_matches_naive(self, sequence):
        from repro.core.asw import _inversion_count_naive
        arr = np.asarray(sequence, dtype=np.int64)
        assert inversion_count(arr) == _inversion_count_naive(arr)

    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=0,
                    max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_float_sequences_agree_too(self, sequence):
        from repro.core.asw import _inversion_count_naive
        arr = np.asarray(sequence, dtype=float)
        assert inversion_count(arr) == _inversion_count_naive(arr)
