"""Tests for the captured-plan execution engine (``repro.nn.plan``).

The engine's contract is absolute: a replayed plan must be **bitwise
indistinguishable** from the define-by-run reference — same losses, same
probabilities, same parameters, same optimizer state, same Dropout RNG
stream.  These tests hold that line across the invalidation matrix
(shape changes, checkpoint restores mid-momentum, train/eval flips,
mid-stream flag toggles) and then fuzz it over random architectures.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.models.base import NeuralStreamingModel
from repro.models.logistic import StreamingLR
from repro.models.mlp import StreamingMLP
from repro.nn import plan as nn_plan
from repro.obs import Observability
from repro.perf import HotPathProfiler, configure


def make_batches(num_batches, batch_size, num_features, num_classes, seed=0):
    rng = np.random.default_rng(seed)
    return [(rng.normal(size=(batch_size, num_features)),
             rng.integers(0, num_classes, batch_size))
            for _ in range(num_batches)]


def run_stream(model, batches, plans_on):
    """Predict + fit over ``batches``; returns (losses, probas)."""
    losses, probas = [], []
    with configure(plan_capture=plans_on):
        for x, y in batches:
            probas.append(model.predict_proba(x).copy())
            losses.append(model.partial_fit(x, y))
    return losses, probas


def assert_bitwise_equal(model_a, model_b, losses_a, losses_b,
                         probas_a, probas_b):
    assert [np.float64(l).tobytes() for l in losses_a] == \
        [np.float64(l).tobytes() for l in losses_b]
    assert [p.tobytes() for p in probas_a] == [p.tobytes() for p in probas_b]
    state_a, state_b = model_a.state_dict(), model_b.state_dict()
    assert list(state_a) == list(state_b)
    for key in state_a:
        assert state_a[key].tobytes() == state_b[key].tobytes(), key


class DropoutMLP(NeuralStreamingModel):
    """One-hidden-layer MLP with Dropout, for RNG-threading tests."""

    name = "dropout-mlp"

    def _build(self, rng):
        return nn.Sequential(
            nn.Linear(self.num_features, 16, rng=rng),
            nn.ReLU(),
            nn.Dropout(0.4, rng=np.random.default_rng(self.seed + 1)),
            nn.Linear(16, self.num_classes, rng=rng),
        )


class AdamLR(StreamingLR):
    name = "adam-lr"

    def _make_optimizer(self):
        return nn.Adam(self.module.parameters(), lr=0.01)


# -- bitwise equivalence ------------------------------------------------------


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("cls", [StreamingLR, StreamingMLP, DropoutMLP,
                                     AdamLR])
    def test_replayed_stream_matches_reference(self, cls):
        batches = make_batches(12, 16, 8, 3)
        with_plans = cls(num_features=8, num_classes=3, seed=4)
        reference = cls(num_features=8, num_classes=3, seed=4)
        results_on = run_stream(with_plans, batches, plans_on=True)
        results_off = run_stream(reference, batches, plans_on=False)
        assert_bitwise_equal(with_plans, reference, results_on[0],
                             results_off[0], results_on[1], results_off[1])
        # The plan actually replayed — this was not a silent fallback.
        assert any(entry is not nn_plan._UNSUPPORTED
                   for entry in with_plans._plans.entries.values())

    def test_dropout_rng_stream_advances_identically(self):
        batches = make_batches(8, 8, 6, 2)
        with_plans = DropoutMLP(num_features=6, num_classes=2, seed=9)
        reference = DropoutMLP(num_features=6, num_classes=2, seed=9)
        run_stream(with_plans, batches, plans_on=True)
        run_stream(reference, batches, plans_on=False)
        dropouts_a = [m for m in with_plans.module.modules()
                      if isinstance(m, nn.Dropout)]
        dropouts_b = [m for m in reference.module.modules()
                      if isinstance(m, nn.Dropout)]
        for a, b in zip(dropouts_a, dropouts_b):
            assert a.rng.bit_generator.state == b.rng.bit_generator.state

    def test_multi_sgd_steps_replay(self):
        batches = make_batches(6, 8, 5, 2)
        with_plans = StreamingMLP(num_features=5, num_classes=2, seed=1,
                                  sgd_steps=3, momentum=0.9)
        reference = StreamingMLP(num_features=5, num_classes=2, seed=1,
                                 sgd_steps=3, momentum=0.9)
        results_on = run_stream(with_plans, batches, plans_on=True)
        results_off = run_stream(reference, batches, plans_on=False)
        assert_bitwise_equal(with_plans, reference, results_on[0],
                             results_off[0], results_on[1], results_off[1])


# -- the invalidation matrix --------------------------------------------------


class TestInvalidationMatrix:
    def test_batch_shape_change_recaptures(self):
        model = StreamingMLP(num_features=6, num_classes=2, seed=0)
        reference = StreamingMLP(num_features=6, num_classes=2, seed=0)
        sizes = [16, 16, 8, 16, 8, 32]
        rng = np.random.default_rng(3)
        for size in sizes:
            x = rng.normal(size=(size, 6))
            y = rng.integers(0, 2, size)
            with configure(plan_capture=True):
                loss_plan = model.partial_fit(x, y)
            with configure(plan_capture=False):
                loss_ref = reference.partial_fit(x, y)
            assert np.float64(loss_plan).tobytes() == \
                np.float64(loss_ref).tobytes()
        # Three distinct fit signatures -> three cached fit plans.
        fit_keys = [key for key in model._plans.entries if key[0] == "fit"]
        assert len(fit_keys) == 3

    def test_checkpoint_restore_mid_momentum_invalidates(self):
        batches = make_batches(10, 8, 5, 2, seed=7)
        model = StreamingMLP(num_features=5, num_classes=2, seed=2,
                             momentum=0.9)
        reference = StreamingMLP(num_features=5, num_classes=2, seed=2,
                                 momentum=0.9)
        run_stream(model, batches[:4], plans_on=True)
        run_stream(reference, batches[:4], plans_on=False)
        checkpoint = model.state_dict()
        run_stream(model, batches[4:7], plans_on=True)
        run_stream(reference, batches[4:7], plans_on=False)
        model.load_state_dict(checkpoint)
        reference.load_state_dict(checkpoint)
        assert len(model._plans.entries) == 0  # dropped on restore
        results_on = run_stream(model, batches[7:], plans_on=True)
        results_off = run_stream(reference, batches[7:], plans_on=False)
        assert_bitwise_equal(model, reference, results_on[0], results_off[0],
                             results_on[1], results_off[1])

    def test_train_eval_flip_uses_distinct_plans(self):
        batches = make_batches(6, 8, 6, 2, seed=5)
        model = DropoutMLP(num_features=6, num_classes=2, seed=3)
        reference = DropoutMLP(num_features=6, num_classes=2, seed=3)
        for flip, (x, y) in enumerate(batches):
            training = flip % 2 == 0
            model.module.train(training)
            reference.module.train(training)
            with configure(plan_capture=True):
                loss_plan = model.partial_fit(x, y)
            with configure(plan_capture=False):
                loss_ref = reference.partial_fit(x, y)
            assert np.float64(loss_plan).tobytes() == \
                np.float64(loss_ref).tobytes()
        fit_keys = [key for key in model._plans.entries if key[0] == "fit"]
        assert len(fit_keys) == 2  # train-mode plan and eval-mode plan

    def test_flag_toggle_mid_stream(self):
        batches = make_batches(9, 8, 5, 2, seed=11)
        model = StreamingLR(num_features=5, num_classes=2, seed=6)
        reference = StreamingLR(num_features=5, num_classes=2, seed=6)
        schedule = [True, True, False, False, True, True, False, True, True]
        for plans_on, (x, y) in zip(schedule, batches):
            with configure(plan_capture=plans_on):
                loss_plan = model.partial_fit(x, y)
                proba_plan = model.predict_proba(x + 0.5)
            with configure(plan_capture=False):
                loss_ref = reference.partial_fit(x, y)
                proba_ref = reference.predict_proba(x + 0.5)
            assert np.float64(loss_plan).tobytes() == \
                np.float64(loss_ref).tobytes()
            assert proba_plan.tobytes() == proba_ref.tobytes()

    def test_plan_set_is_bounded_lru(self):
        model = StreamingLR(num_features=4, num_classes=2, seed=0)
        rng = np.random.default_rng(0)
        with configure(plan_capture=True):
            for size in range(2, 2 + nn_plan._PLAN_SET_CAP + 4):
                x = rng.normal(size=(size, 4))
                y = rng.integers(0, 2, size)
                model.partial_fit(x, y)
        assert len(model._plans.entries) <= nn_plan._PLAN_SET_CAP


# -- eligibility and fallback -------------------------------------------------


class TestFallback:
    def test_custom_prepare_opts_out(self):
        class WeirdPrepare(StreamingLR):
            def _prepare(self, x):
                return nn.Tensor(np.asarray(x, dtype=float) * 2.0)

        model = WeirdPrepare(num_features=4, num_classes=2, seed=0)
        x = np.ones((6, 4))
        y = np.zeros(6, dtype=np.int64)
        with configure(plan_capture=True):
            model.partial_fit(x, y)
        assert not hasattr(model, "_plans")

    def test_exotic_optimizer_opts_out(self):
        class FobosLR(StreamingLR):
            def _make_optimizer(self):
                return nn.FOBOS(self.module.parameters(), lr=0.05)

        model = FobosLR(num_features=4, num_classes=2, seed=0)
        x = np.ones((6, 4))
        y = np.zeros(6, dtype=np.int64)
        with configure(plan_capture=True):
            model.partial_fit(x, y)
        assert not hasattr(model, "_plans")

    def test_pickling_drops_plans(self):
        import pickle

        model = StreamingLR(num_features=4, num_classes=2, seed=0)
        batches = make_batches(3, 8, 4, 2)
        run_stream(model, batches, plans_on=True)
        assert hasattr(model, "_plans")
        clone = pickle.loads(pickle.dumps(model))
        assert not hasattr(clone, "_plans")
        # The revived model still trains, and captures fresh plans.
        results_a = run_stream(clone, batches, plans_on=True)
        reference = pickle.loads(pickle.dumps(model))
        results_b = run_stream(reference, batches, plans_on=False)
        assert_bitwise_equal(clone, reference, results_a[0], results_b[0],
                             results_a[1], results_b[1])


# -- stacked plans ------------------------------------------------------------


class TestStackedPlans:
    def _fleet(self, num_models, seed=0):
        models = [StreamingMLP(num_features=6, num_classes=3, seed=seed + s,
                               momentum=0.9) for s in range(num_models)]
        stack = nn.stack_models([m.module for m in models])
        optimizer = nn.make_stacked_optimizer(
            stack, [m.optimizer for m in models])
        return models, stack, optimizer

    def test_stacked_fit_replay_is_bitwise(self):
        nn_plan.clear_stacked_plans()
        rng = np.random.default_rng(8)
        steps = [(rng.normal(size=(4, 8, 6)), rng.integers(0, 3, (4, 8)))
                 for _ in range(8)]

        def run(plans_on):
            models, stack, optimizer = self._fleet(4)
            losses = []
            with configure(plan_capture=plans_on):
                for xs, ys in steps:
                    losses.append(nn.stacked_fit(stack, optimizer, xs, ys))
            nn.unstack_models(stack)
            return losses, [m.state_dict() for m in models]

        losses_on, states_on = run(True)
        losses_off, states_off = run(False)
        assert [l.tobytes() for l in losses_on] == \
            [l.tobytes() for l in losses_off]
        for state_a, state_b in zip(states_on, states_off):
            for key in state_a:
                assert state_a[key].tobytes() == state_b[key].tobytes()
        nn_plan.clear_stacked_plans()

    def test_stacked_plan_survives_rebinding_to_new_fleet(self):
        # Two different fleets with the same signature share one cached
        # plan; bind() must rebind parameters, not leak the first fleet's.
        nn_plan.clear_stacked_plans()
        rng = np.random.default_rng(9)
        xs = rng.normal(size=(3, 8, 6))
        ys = rng.integers(0, 3, (3, 8))
        with configure(plan_capture=True):
            models_a, stack_a, opt_a = self._fleet(3, seed=0)
            nn.stacked_fit(stack_a, opt_a, xs, ys)
            losses_a = nn.stacked_fit(stack_a, opt_a, xs, ys)
            nn.unstack_models(stack_a)
            models_b, stack_b, opt_b = self._fleet(3, seed=40)
            losses_b = nn.stacked_fit(stack_b, opt_b, xs, ys)
            nn.unstack_models(stack_b)
        # Different weights -> different losses; same plan served both.
        assert losses_a.tobytes() != losses_b.tobytes()
        with configure(plan_capture=False):
            models_ref, stack_ref, opt_ref = self._fleet(3, seed=40)
            losses_ref = nn.stacked_fit(stack_ref, opt_ref, xs, ys)
            nn.unstack_models(stack_ref)
        assert losses_b.tobytes() == losses_ref.tobytes()
        for model_b, model_ref in zip(models_b, models_ref):
            state_b, state_ref = model_b.state_dict(), model_ref.state_dict()
            for key in state_b:
                assert state_b[key].tobytes() == state_ref[key].tobytes()
        nn_plan.clear_stacked_plans()


# -- telemetry ----------------------------------------------------------------


class TestPlanTelemetry:
    def test_profiler_hook_records_events_and_counter(self):
        obs = Observability(enabled=True)
        profiler = HotPathProfiler(obs=obs)
        nn_plan.add_plan_hook(profiler.observe_plan_event)
        try:
            model = StreamingLR(num_features=4, num_classes=2, seed=0)
            batches = make_batches(4, 8, 4, 2)
            run_stream(model, batches, plans_on=True)
        finally:
            nn_plan.remove_plan_hook(profiler.observe_plan_event)
        summary = profiler.summary()
        assert "plan.capture" in summary
        assert "plan.replay" in summary
        assert summary["plan.replay"]["count"] >= 3
        counter = obs.registry.counter(nn_plan.PLAN_CACHE_COUNTER)
        events = {child._labels: child.value
                  for child in counter._children.values()}
        assert events[(("event", "capture"),)] >= 1
        assert events[(("event", "replay"),)] >= 3

    def test_stats_count_replays_without_hooks(self):
        before = nn_plan.plan_cache_stats().get("replay", 0)
        model = StreamingLR(num_features=4, num_classes=2, seed=0)
        batches = make_batches(4, 8, 4, 2)
        run_stream(model, batches, plans_on=True)
        assert nn_plan.plan_cache_stats().get("replay", 0) > before


# -- hypothesis fuzz ----------------------------------------------------------


class TestPlanFuzz:
    @settings(max_examples=20, deadline=None)
    @given(
        hidden=st.lists(st.sampled_from([3, 5, 8]), min_size=0, max_size=2),
        seed=st.integers(min_value=0, max_value=2**16),
        batch_size=st.integers(min_value=1, max_value=9),
        momentum=st.sampled_from([0.0, 0.9]),
    )
    def test_replayed_fit_is_bitwise_identical(self, hidden, seed,
                                               batch_size, momentum):
        num_features, num_classes = 6, 3
        batches = make_batches(5, batch_size, num_features, num_classes,
                               seed=seed)
        if hidden:
            build = lambda: StreamingMLP(  # noqa: E731
                num_features=num_features, num_classes=num_classes,
                hidden=tuple(hidden), seed=seed, momentum=momentum)
        else:
            build = lambda: StreamingLR(  # noqa: E731
                num_features=num_features, num_classes=num_classes,
                seed=seed, momentum=momentum)
        with_plans, reference = build(), build()
        results_on = run_stream(with_plans, batches, plans_on=True)
        results_off = run_stream(reference, batches, plans_on=False)
        assert_bitwise_equal(with_plans, reference, results_on[0],
                             results_off[0], results_on[1], results_off[1])
