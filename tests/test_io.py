"""Tests for CSV/array stream loading (repro.data.io)."""

import numpy as np
import pytest

from repro.data import load_csv, stream_from_arrays, stream_from_csv


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text(
        "f1,f2,label\n"
        "1.0,2.0,0\n"
        "3.0,4.0,1\n"
        "5.0,6.0,0\n"
        "7.0,8.0,1\n"
    )
    return path


class TestLoadCsv:
    def test_basic(self, csv_file):
        x, y = load_csv(csv_file)
        np.testing.assert_allclose(x, [[1, 2], [3, 4], [5, 6], [7, 8]])
        np.testing.assert_array_equal(y, [0, 1, 0, 1])
        assert y.dtype == np.int64

    def test_label_column_by_name(self, tmp_path):
        path = tmp_path / "named.csv"
        path.write_text("label,a,b\n1,10,20\n0,30,40\n")
        x, y = load_csv(path, label_column="label")
        np.testing.assert_allclose(x, [[10, 20], [30, 40]])
        np.testing.assert_array_equal(y, [1, 0])

    def test_label_column_by_index(self, tmp_path):
        path = tmp_path / "indexed.csv"
        path.write_text("5,10,1\n6,11,0\n")
        x, y = load_csv(path, label_column=0)
        np.testing.assert_allclose(x, [[10, 1], [11, 0]])
        # Sparse numeric labels (5, 6) are densified by first appearance.
        np.testing.assert_array_equal(y, [0, 1])

    def test_header_sniffing(self, tmp_path):
        headerless = tmp_path / "no_header.csv"
        headerless.write_text("1.0,2.0,0\n3.0,4.0,1\n")
        x, _ = load_csv(headerless)
        assert len(x) == 2  # first row treated as data

    def test_string_labels_coded_in_order(self, tmp_path):
        path = tmp_path / "strings.csv"
        path.write_text("f,label\n1,cat\n2,dog\n3,cat\n4,bird\n")
        _, y = load_csv(path)
        np.testing.assert_array_equal(y, [0, 1, 0, 2])

    def test_order_preserved(self, tmp_path):
        path = tmp_path / "ordered.csv"
        rows = "\n".join(f"{i}.0,{i % 3}" for i in range(50))
        path.write_text(rows + "\n")
        x, _ = load_csv(path)
        np.testing.assert_allclose(x.ravel(), np.arange(50, dtype=float))

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("1,2,0\n1,2,3,0\n")
        with pytest.raises(ValueError, match="fields"):
            load_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="no data"):
            load_csv(path)

    def test_header_only_rejected(self, tmp_path):
        path = tmp_path / "header_only.csv"
        path.write_text("a,b,label\n")
        with pytest.raises(ValueError, match="no data"):
            load_csv(path)

    def test_name_without_header_rejected(self, tmp_path):
        path = tmp_path / "nh.csv"
        path.write_text("1,2,0\n")
        with pytest.raises(ValueError, match="no header"):
            load_csv(path, label_column="label", has_header=False)

    def test_unknown_column_name(self, csv_file):
        with pytest.raises(ValueError, match="no column named"):
            load_csv(csv_file, label_column="bogus")

    def test_fractional_labels_rejected(self, tmp_path):
        path = tmp_path / "frac.csv"
        path.write_text("1.0,0.5\n2.0,1.5\n")
        with pytest.raises(ValueError, match="non-integer"):
            load_csv(path)

    def test_negative_labels_shifted(self, tmp_path):
        path = tmp_path / "neg.csv"
        path.write_text("1.0,-1\n2.0,1\n")
        _, y = load_csv(path)
        assert y.min() == 0


class TestStreams:
    def test_stream_from_csv(self, csv_file):
        stream = stream_from_csv(csv_file, batch_size=2)
        batches = stream.materialize()
        assert len(batches) == 2
        assert stream.num_features == 2
        assert stream.num_classes == 2
        np.testing.assert_allclose(batches[0].x, [[1, 2], [3, 4]])

    def test_stream_from_arrays_keeps_partial_batch(self, rng):
        x = rng.normal(size=(10, 3))
        y = rng.integers(0, 2, size=10)
        batches = stream_from_arrays(x, y, batch_size=4).materialize()
        assert [len(b) for b in batches] == [4, 4, 2]

    def test_learner_runs_on_csv_stream(self, tmp_path, rng):
        # End-to-end: user CSV -> stream -> FreewayML.
        x = rng.normal(size=(400, 4))
        y = (x[:, 0] > 0).astype(int)
        lines = [",".join(f"{v:.4f}" for v in row) + f",{label}"
                 for row, label in zip(x, y)]
        path = tmp_path / "user.csv"
        path.write_text("\n".join(lines) + "\n")

        from repro.core import Learner
        from repro.models import StreamingLR
        learner = Learner(
            lambda: StreamingLR(num_features=4, num_classes=2, lr=0.5,
                                seed=0),
            window_batches=4,
        )
        reports = [learner.process(batch)
                   for batch in stream_from_csv(path, batch_size=50)]
        assert len(reports) == 8
        assert np.mean([r.accuracy for r in reports[2:]]) > 0.7
