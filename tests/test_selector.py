"""Tests for the strategy selector (repro.core.selector)."""

import pytest

from repro.core import Strategy, StrategySelector
from repro.shift import ShiftAssessment, ShiftPattern


def assessment(pattern):
    return ShiftAssessment(pattern=pattern)


@pytest.fixture
def selector():
    return StrategySelector()


FULL_HOUSE = dict(knowledge_available=True, experience_available=True,
                  ensemble_trained=True)


class TestPrimaryRouting:
    def test_slight_routes_to_ensemble(self, selector):
        decision = selector.select(assessment(ShiftPattern.SLIGHT),
                                   **FULL_HOUSE)
        assert decision.strategy is Strategy.MULTI_GRANULARITY
        assert not decision.fallback

    def test_warmup_routes_to_ensemble(self, selector):
        decision = selector.select(assessment(ShiftPattern.WARMUP),
                                   **FULL_HOUSE)
        assert decision.strategy is Strategy.MULTI_GRANULARITY

    def test_sudden_routes_to_cec(self, selector):
        decision = selector.select(assessment(ShiftPattern.SUDDEN),
                                   **FULL_HOUSE)
        assert decision.strategy is Strategy.CEC
        assert not decision.fallback

    def test_reoccurring_routes_to_knowledge(self, selector):
        decision = selector.select(assessment(ShiftPattern.REOCCURRING),
                                   **FULL_HOUSE)
        assert decision.strategy is Strategy.KNOWLEDGE_REUSE
        assert not decision.fallback

    def test_exactly_one_strategy_per_batch(self, selector):
        """Paper Section V: only ONE strategy executes per inference batch."""
        for pattern in (ShiftPattern.SLIGHT, ShiftPattern.SUDDEN,
                        ShiftPattern.REOCCURRING, ShiftPattern.WARMUP):
            decision = selector.select(assessment(pattern), **FULL_HOUSE)
            assert isinstance(decision.strategy, Strategy)


class TestFallbacks:
    def test_reoccurring_without_knowledge_falls_to_cec(self, selector):
        decision = selector.select(
            assessment(ShiftPattern.REOCCURRING),
            knowledge_available=False, experience_available=True,
            ensemble_trained=True,
        )
        assert decision.strategy is Strategy.CEC
        assert decision.fallback
        assert "empty" in decision.reason

    def test_reoccurring_with_nothing_falls_to_ensemble(self, selector):
        decision = selector.select(
            assessment(ShiftPattern.REOCCURRING),
            knowledge_available=False, experience_available=False,
            ensemble_trained=True,
        )
        assert decision.strategy is Strategy.MULTI_GRANULARITY
        assert decision.fallback

    def test_sudden_without_experience_falls_to_ensemble(self, selector):
        decision = selector.select(
            assessment(ShiftPattern.SUDDEN),
            knowledge_available=True, experience_available=False,
            ensemble_trained=True,
        )
        assert decision.strategy is Strategy.MULTI_GRANULARITY
        assert decision.fallback

    def test_decision_records_pattern(self, selector):
        decision = selector.select(assessment(ShiftPattern.SUDDEN),
                                   **FULL_HOUSE)
        assert decision.pattern is ShiftPattern.SUDDEN
