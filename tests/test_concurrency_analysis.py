"""Tests for repro.analysis.concurrency (REP008-REP011) and the
concurrency fixes that ride along with it: the MetricsRegistry lock, the
fork-after-thread guard, and ThreadBackend drain ordering."""

import json
import threading
import time
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import (
    CONCURRENCY_RULES,
    EXIT_CLEAN,
    EXIT_FINDINGS,
    RULE_DETAILS,
    RULES,
    render_rule_catalogue,
    run_analyze,
)
from repro.analysis.concurrency import (
    COORDINATOR,
    PROCESS_WORKER,
    SERVER_THREAD,
    THREAD_WORKER,
    build_project,
    analyze_project,
    scan_paths,
)
from repro.cli import main as cli_main
from repro.data.stream import Batch
from repro.distributed.backends import ProcessBackend, ThreadBackend
from repro.obs.metrics import MetricsRegistry

SRC = Path(__file__).resolve().parent.parent / "src"
DOCS = Path(__file__).resolve().parent.parent / "docs"


def write_module(tmp_path, source: str, name: str = "fixture.py") -> Path:
    target = tmp_path / name
    target.write_text(source)
    return target


def codes(findings, *, suppressed=False):
    return sorted(f.code for f in findings if f.suppressed == suppressed)


# ---------------------------------------------------------------------------
# Execution-context inference
# ---------------------------------------------------------------------------


CONTEXT_FIXTURE = '''
import multiprocessing
import threading
from http.server import BaseHTTPRequestHandler


def thread_target():
    helper()


def helper():
    pass


def process_target(conn):
    pass


class ScrapeHandler(BaseHTTPRequestHandler):
    def do_GET(self):
        helper()


def main():
    thread = threading.Thread(target=thread_target)
    thread.start()
    process = multiprocessing.Process(target=process_target, args=(None,))
    process.start()
'''


class TestContextInference:
    def test_roots_and_propagation(self, tmp_path):
        path = write_module(tmp_path, CONTEXT_FIXTURE)
        project = build_project([path])
        analyze_project(project)

        def contexts(qualname):
            return project.function(qualname).contexts

        assert THREAD_WORKER in contexts("thread_target")
        assert PROCESS_WORKER in contexts("process_target")
        assert SERVER_THREAD in contexts("ScrapeHandler.do_GET")
        assert contexts("main") == {COORDINATOR}
        # helper is called from a thread target AND a server handler.
        helper = contexts("helper")
        assert THREAD_WORKER in helper and SERVER_THREAD in helper


# ---------------------------------------------------------------------------
# REP008 — unsynchronized shared mutable state
# ---------------------------------------------------------------------------


REP008_POSITIVE = '''
import threading


class Store:
    def __init__(self):
        self.buffer = []

    def add(self, value):
        self.buffer.append(value)


def worker(store: Store):
    store.buffer.append(1)


def main(store: Store):
    thread = threading.Thread(target=worker, args=(store,))
    thread.start()
    store.buffer.append(2)
'''

REP008_NEGATIVE = '''
import threading


class LockedStore:
    def __init__(self):
        self.buffer = []
        self._lock = threading.Lock()

    def add(self, value):
        with self._lock:
            self.buffer.append(value)


def worker(store: LockedStore):
    with store._lock:
        store.buffer.append(1)


def main(store: LockedStore):
    thread = threading.Thread(target=worker, args=(store,))
    thread.start()
    with store._lock:
        store.buffer.append(2)
'''


class TestRep008:
    def test_positive_flags_every_unprotected_write(self, tmp_path):
        findings = scan_paths([write_module(tmp_path, REP008_POSITIVE)])
        assert codes(findings) == ["REP008", "REP008", "REP008"]
        assert all("Store.buffer" in f.message for f in findings)

    def test_lock_protected_writes_are_clean(self, tmp_path):
        findings = scan_paths([write_module(tmp_path, REP008_NEGATIVE)])
        assert codes(findings) == []

    def test_noqa_suppresses_but_is_retained(self, tmp_path):
        source = REP008_POSITIVE.replace(
            "store.buffer.append(1)",
            "store.buffer.append(1)  # repro: noqa[REP008] - fixture",
        )
        findings = scan_paths([write_module(tmp_path, source)])
        assert codes(findings) == ["REP008", "REP008"]
        assert codes(findings, suppressed=True) == ["REP008"]

    def test_disabling_the_rule_silences_it(self, tmp_path):
        path = write_module(tmp_path, REP008_POSITIVE)
        assert codes(scan_paths([path], rules={"REP008"})) != []
        assert codes(scan_paths([path], rules={"REP009"})) == []


# ---------------------------------------------------------------------------
# REP009 — fork-unsafety
# ---------------------------------------------------------------------------


REP009_THREAD_THEN_FORK = '''
import multiprocessing
import threading


def work():
    pass


def main():
    thread = threading.Thread(target=work)
    thread.start()
    process = multiprocessing.Process(target=work)
    process.start()
'''

REP009_FORK_ONLY = '''
import multiprocessing


def work():
    pass


def main():
    process = multiprocessing.Process(target=work)
    process.start()
'''

REP009_PIPE_LEAK = '''
import multiprocessing


def child_main(conn):
    conn.poll()


def main():
    parent, child = multiprocessing.Pipe()
    process = multiprocessing.Process(target=child_main, args=(child,))
    process.start()
    parent.poll()
'''


class TestRep009:
    def test_thread_then_fork_flagged(self, tmp_path):
        findings = scan_paths(
            [write_module(tmp_path, REP009_THREAD_THEN_FORK)])
        assert "REP009" in codes(findings)

    def test_fork_without_threads_is_clean(self, tmp_path):
        findings = scan_paths([write_module(tmp_path, REP009_FORK_ONLY)])
        assert codes(findings) == []

    def test_inherited_pipe_endpoint_never_closed(self, tmp_path):
        findings = scan_paths([write_module(tmp_path, REP009_PIPE_LEAK)])
        assert "REP009" in codes(findings)

    def test_closing_the_child_endpoint_is_clean(self, tmp_path):
        source = REP009_PIPE_LEAK.replace(
            "process.start()", "process.start()\n    child.close()")
        findings = scan_paths([write_module(tmp_path, source)])
        assert codes(findings) == []

    def test_disabling_the_rule_silences_it(self, tmp_path):
        path = write_module(tmp_path, REP009_THREAD_THEN_FORK)
        assert "REP009" in codes(scan_paths([path], rules={"REP009"}))
        assert codes(scan_paths([path], rules={"REP011"})) == []


# ---------------------------------------------------------------------------
# REP010 — unbounded blocking under a lock / in a supervised loop
# ---------------------------------------------------------------------------


REP010_UNDER_LOCK = '''
import threading

LOCK = threading.Lock()


def consume(queue):
    with LOCK:
        return queue.get()
'''

REP010_SUPERVISED_LOOP = '''
import multiprocessing


def worker_loop(conn):
    while True:
        message = conn.recv()
        if message is None:
            break


def main():
    parent, child = multiprocessing.Pipe()
    process = multiprocessing.Process(target=worker_loop, args=(child,))
    process.start()
    child.close()
    parent.send(None)
'''


class TestRep010:
    def test_unbounded_get_under_lock(self, tmp_path):
        findings = scan_paths([write_module(tmp_path, REP010_UNDER_LOCK)])
        assert codes(findings) == ["REP010"]

    def test_timeout_makes_it_clean(self, tmp_path):
        source = REP010_UNDER_LOCK.replace("queue.get()",
                                           "queue.get(timeout=1.0)")
        findings = scan_paths([write_module(tmp_path, source)])
        assert codes(findings) == []

    def test_unbounded_recv_in_worker_loop(self, tmp_path):
        findings = scan_paths(
            [write_module(tmp_path, REP010_SUPERVISED_LOOP)])
        assert "REP010" in codes(findings)

    def test_noqa_suppresses(self, tmp_path):
        source = REP010_UNDER_LOCK.replace(
            "return queue.get()",
            "return queue.get()  # repro: noqa[REP010] - fixture",
        )
        findings = scan_paths([write_module(tmp_path, source)])
        assert codes(findings) == []
        assert codes(findings, suppressed=True) == ["REP010"]

    def test_disabling_the_rule_silences_it(self, tmp_path):
        path = write_module(tmp_path, REP010_UNDER_LOCK)
        assert codes(scan_paths([path], rules={"REP010"})) == ["REP010"]
        assert codes(scan_paths([path], rules={"REP008"})) == []


# ---------------------------------------------------------------------------
# REP011 — singleton confinement
# ---------------------------------------------------------------------------


REP011_THREAD_LOCAL = '''
import threading
from http.server import BaseHTTPRequestHandler

STATE = threading.local()


class MetricsHandler(BaseHTTPRequestHandler):
    def do_GET(self):
        STATE.hits = 1
'''

REP011_SHARED_SINGLETON = '''
import threading


class Config:
    def __init__(self):
        self.level = 0


CONFIG = Config()


def reconfigure():
    global CONFIG
    CONFIG = Config()


def main():
    thread = threading.Thread(target=reconfigure)
    thread.start()
'''


class TestRep011:
    def test_thread_local_touched_from_server_thread(self, tmp_path):
        findings = scan_paths([write_module(tmp_path, REP011_THREAD_LOCAL)])
        assert "REP011" in codes(findings)

    def test_shared_singleton_rebinding_from_worker(self, tmp_path):
        findings = scan_paths(
            [write_module(tmp_path, REP011_SHARED_SINGLETON)])
        assert "REP011" in codes(findings)

    def test_coordinator_only_rebinding_is_clean(self, tmp_path):
        source = REP011_SHARED_SINGLETON.replace(
            "thread = threading.Thread(target=reconfigure)\n"
            "    thread.start()",
            "reconfigure()",
        )
        findings = scan_paths([write_module(tmp_path, source)])
        assert codes(findings) == []

    def test_disabling_the_rule_silences_it(self, tmp_path):
        path = write_module(tmp_path, REP011_SHARED_SINGLETON)
        assert "REP011" in codes(scan_paths([path], rules={"REP011"}))
        assert codes(scan_paths([path], rules={"REP008"})) == []


# ---------------------------------------------------------------------------
# Registry / catalogue consistency (no doc drift)
# ---------------------------------------------------------------------------


class TestRuleRegistry:
    def test_concurrency_rules_derived_from_registry(self):
        assert set(CONCURRENCY_RULES) == {"REP008", "REP009", "REP010",
                                          "REP011"}
        for code, summary in CONCURRENCY_RULES.items():
            assert summary == RULE_DETAILS[code]["summary"]

    def test_lint_rules_derived_from_registry(self):
        assert set(RULES) == {code for code, info in RULE_DETAILS.items()
                              if info["pass"] == "lint"}

    def test_catalogue_covers_every_rule(self):
        table = render_rule_catalogue()
        for code in RULE_DETAILS:
            assert code in table

    def test_docs_embed_the_rendered_catalogue(self):
        text = (DOCS / "ANALYSIS.md").read_text()
        assert render_rule_catalogue() in text, (
            "docs/ANALYSIS.md rule table is stale; paste the output of "
            "repro.analysis.render_rule_catalogue() between the "
            "rule-catalogue markers"
        )


# ---------------------------------------------------------------------------
# The tree itself and the CLI surface
# ---------------------------------------------------------------------------


class TestTreeIsClean:
    def test_src_concurrency_pass_is_clean(self):
        findings = [f for f in scan_paths([SRC / "repro"])
                    if not f.suppressed]
        assert findings == [], "\n".join(f.describe() for f in findings)


class TestCli:
    def test_analyze_concurrency_clean_tree(self):
        assert cli_main(["analyze", str(SRC), "--concurrency"]) == EXIT_CLEAN

    def test_analyze_concurrency_failure_exit(self, tmp_path, capsys):
        write_module(tmp_path, REP008_POSITIVE)
        code = cli_main(["analyze", str(tmp_path), "--concurrency",
                         "--format", "json"])
        assert code == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"].get("REP008")
        assert "REP008" in payload["rules"]

    def test_without_flag_concurrency_rules_not_run(self, tmp_path, capsys):
        write_module(tmp_path, "__all__ = []\n" + REP008_POSITIVE)
        assert run_analyze([tmp_path], output_format="json") == EXIT_CLEAN
        payload = json.loads(capsys.readouterr().out)
        assert "REP008" not in payload["counts"]


# ---------------------------------------------------------------------------
# Satellite: MetricsRegistry lock
# ---------------------------------------------------------------------------


class TestMetricsRegistryLock:
    def test_scrapes_survive_concurrent_mutation(self):
        registry = MetricsRegistry()
        errors = []
        stop = threading.Event()

        def scrape():
            while not stop.is_set():
                try:
                    registry.render_text()
                    registry.snapshot()
                    registry.dump()
                except Exception as error:  # pragma: no cover - regression
                    errors.append(error)
                    return

        thread = threading.Thread(target=scrape, name="scraper")
        thread.start()
        try:
            for index in range(200):
                registry.counter(f"ctr_{index}", "fixture").inc()
                registry.gauge(f"g_{index}").labels(w=str(index)).set(index)
                registry.histogram(f"h_{index}").observe(index * 1e-3)
        finally:
            stop.set()
            thread.join(timeout=10)
        assert errors == []

    def test_concurrent_increments_lose_nothing(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")

        def spin():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 20_000

    def test_registry_still_pickles_for_worker_checkpoints(self):
        import pickle

        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.counter("hits").labels(worker="1").inc(2)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.counter("hits").value == 3
        # The one-lock-per-registry invariant survives the round trip.
        assert clone._lock is clone._instruments["hits"]._lock
        clone.counter("hits").inc()  # still usable


# ---------------------------------------------------------------------------
# Satellite: fork-after-thread guard
# ---------------------------------------------------------------------------


class TestForkAfterThreadGuard:
    def test_warns_and_names_the_leaked_thread(self):
        release = threading.Event()
        thread = threading.Thread(target=release.wait,
                                  name="lingering-fixture")
        thread.start()
        try:
            with pytest.warns(RuntimeWarning, match="lingering-fixture"):
                ProcessBackend._warn_if_threads_alive()
        finally:
            release.set()
            thread.join()

    def test_silent_when_single_threaded(self):
        extra = [t for t in threading.enumerate()
                 if t is not threading.current_thread()]
        if extra:
            pytest.skip(f"leftover threads from other tests: {extra}")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ProcessBackend._warn_if_threads_alive()


# ---------------------------------------------------------------------------
# Satellite: deterministic ThreadBackend drain ordering
# ---------------------------------------------------------------------------


class _Report:
    def __init__(self, payload):
        self.payload = payload

    def to_dict(self):
        return self.payload


class _GatedLearner:
    """Stub replica whose ``process`` parks on an Event per batch index."""

    def __init__(self, name, gates, log, lock):
        self.name = name
        self.gates = gates
        self.log = log
        self.lock = lock

    def process(self, batch):
        gate = self.gates.get(batch.index)
        if gate is not None:
            assert gate.wait(timeout=10), "fixture gate never opened"
        with self.lock:
            self.log.append((self.name, batch.index))
        return _Report({"index": batch.index, "replica": self.name})


class TestThreadBackendDrainOrdering:
    def test_drain_is_fifo_despite_reversed_completion(self):
        gate = threading.Event()
        log, lock = [], threading.Lock()
        slow = _GatedLearner("slow", {0: gate}, log, lock)
        fast = _GatedLearner("fast", {}, log, lock)
        backend = ThreadBackend(max_inflight=2)
        backend.bind([slow, fast])

        def batch(index):
            return Batch(np.zeros((1, 2)), np.zeros(1, dtype=np.int64),
                         index=index)

        try:
            backend.submit([batch(0), batch(0)])
            backend.submit([batch(1), batch(1)])
            # Deterministic inversion: the fast replica finishes BOTH its
            # shards while the slow replica is still parked on batch 0.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                with lock:
                    if ("fast", 1) in log:
                        break
                time.sleep(0.002)
            with lock:
                assert ("fast", 1) in log, "fast replica never finished"
                assert ("slow", 0) not in log, "gate failed to hold"
            gate.set()
            first = backend.drain()
            second = backend.drain()
        finally:
            gate.set()
            backend.close()
        # FIFO: submission order survives the reversed completion order.
        assert [step.report["index"] for step in first] == [0, 0]
        assert [step.report["index"] for step in second] == [1, 1]
        assert [step.report["replica"] for step in first] == ["slow", "fast"]
