"""Smoke tests: every example script runs end to end (at reduced scale)."""

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def shrink(module, **overrides):
    """Reduce an example's workload so the smoke test stays fast."""
    defaults = {"NUM_BATCHES": 12, "BATCH_SIZE": 64,
                "CHECKPOINT_EVERY": 3}
    defaults.update(overrides)
    for name, value in defaults.items():
        if hasattr(module, name):
            setattr(module, name, value)
    return module


@pytest.mark.parametrize("name", [
    "quickstart",
    "network_security",
    "shift_graph_analysis",
    "image_stream_cnn",
    "custom_models_and_scale",
    "serving_with_checkpoints",
])
def test_example_runs(name, capsys):
    module = shrink(load_example(name))
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_quickstart_reports_both_frameworks(capsys):
    module = shrink(load_example("quickstart"), NUM_BATCHES=15)
    module.main()
    out = capsys.readouterr().out
    assert "freewayml" in out
    assert "streaming-mlp" in out
    assert "G_acc" in out


def test_shift_graph_reports_correlation(capsys):
    module = shrink(load_example("shift_graph_analysis"), NUM_BATCHES=20,
                    BATCH_SIZE=128)
    module.main()
    out = capsys.readouterr().out
    assert "corr(shift magnitude, accuracy drop)" in out
    assert "shift graph:" in out
