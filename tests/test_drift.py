"""Tests for concepts and drift schedules (repro.data.drift)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    GaussianMixtureConcept,
    HyperplaneConcept,
    Pattern,
    Segment,
    pattern_mix_schedule,
    stream_from_schedule,
)


@pytest.fixture
def concept(rng):
    return GaussianMixtureConcept(3, 5, rng)


class TestGaussianMixtureConcept:
    def test_sample_shapes(self, concept, rng):
        x, y = concept.sample(rng, 50)
        assert x.shape == (50, 5)
        assert y.shape == (50,)
        assert set(np.unique(y)) <= {0, 1, 2}

    def test_class_weights_respected(self, rng):
        concept = GaussianMixtureConcept(2, 3, rng,
                                         class_weights=[0.9, 0.1])
        _, y = concept.sample(rng, 5000)
        assert 0.85 < (y == 0).mean() < 0.95

    def test_samples_cluster_near_means(self, concept, rng):
        x, y = concept.sample(rng, 2000)
        for label in range(3):
            centroid = x[y == label].mean(axis=0)
            np.testing.assert_allclose(centroid, concept.means[label],
                                       atol=0.2)

    def test_drift_moves_means(self, concept, rng):
        before = concept.means.copy()
        concept.drift(rng, 0.5)
        moved = np.linalg.norm(concept.means - before, axis=1)
        np.testing.assert_allclose(moved, 0.5, atol=1e-9)

    def test_drift_is_persistent_in_direction(self, concept, rng):
        start = concept.means.copy()
        for _ in range(10):
            concept.drift(rng, 0.1)
        total = np.linalg.norm(concept.means - start, axis=1)
        # Persistent direction: net displacement close to sum of steps.
        assert (total > 0.7).all()

    def test_jitter_has_no_persistent_direction(self, concept, rng):
        start = concept.means.copy()
        for _ in range(100):
            concept.jitter(rng, 0.1)
        total = np.linalg.norm(concept.means - start, axis=1)
        # Random walk: expect ~0.1*sqrt(100)=1, far below 100*0.1=10.
        assert (total < 5.0).all()

    def test_clone_is_independent(self, concept, rng):
        frozen = concept.clone()
        concept.drift(rng, 1.0)
        assert not np.allclose(frozen.means, concept.means)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            GaussianMixtureConcept(1, 5, rng)


class TestRemix:
    def test_remix_is_catastrophic_for_old_model(self, rng):
        """A remixed concept actively breaks the old decision rule."""
        concept = GaussianMixtureConcept(4, 10, rng, spread=4.0, scale=0.8)
        remixed = concept.remix(rng, offset=4.0)
        # Nearest-mean classifier trained on the base concept...
        x_new, y_new = remixed.sample(rng, 1000)
        distances = np.linalg.norm(
            x_new[:, None, :] - concept.means[None, :, :], axis=2
        )
        old_rule_predictions = distances.argmin(axis=1)
        accuracy = (old_rule_predictions == y_new).mean()
        assert accuracy < 0.5  # near or below chance on the remix

    def test_remix_preserves_cluster_structure(self, rng):
        concept = GaussianMixtureConcept(3, 8, rng, spread=4.0, scale=0.8)
        remixed = concept.remix(rng)
        x, y = remixed.sample(rng, 1500)
        # Nearest-mean classifier with the *new* means is near-perfect.
        distances = np.linalg.norm(
            x[:, None, :] - remixed.means[None, :, :], axis=2
        )
        assert (distances.argmin(axis=1) == y).mean() > 0.9

    def test_remix_moves_feature_mass(self, rng):
        concept = GaussianMixtureConcept(3, 8, rng)
        remixed = concept.remix(rng, offset=5.0)
        gap = np.linalg.norm(
            remixed.means.mean(axis=0) - concept.means.mean(axis=0)
        )
        assert gap > 3.0

    def test_remix_class_weights(self, rng):
        concept = GaussianMixtureConcept(2, 4, rng)
        remixed = concept.remix(rng, class_weights=[0.2, 0.8])
        np.testing.assert_allclose(remixed.class_weights, [0.2, 0.8])

    def test_remix_leaves_original_untouched(self, rng):
        concept = GaussianMixtureConcept(3, 4, rng)
        before = concept.means.copy()
        concept.remix(rng)
        np.testing.assert_array_equal(concept.means, before)


class TestHyperplaneConcept:
    def test_labels_follow_hyperplane(self, rng):
        concept = HyperplaneConcept(5, rng, noise=0.0)
        x, y = concept.sample(rng, 500)
        expected = (x @ concept.weights > concept.weights.sum() / 2)
        np.testing.assert_array_equal(y, expected.astype(np.int64))

    def test_noise_flips_labels(self, rng):
        concept = HyperplaneConcept(5, rng, noise=0.5)
        x, y = concept.sample(rng, 2000)
        clean = (x @ concept.weights > concept.weights.sum() / 2)
        flip_rate = (y != clean).mean()
        assert 0.4 < flip_rate < 0.6

    def test_drift_changes_weights(self, rng):
        concept = HyperplaneConcept(5, rng)
        before = concept.weights.copy()
        concept.drift(rng, 0.5)
        assert not np.allclose(concept.weights, before)

    def test_clone(self, rng):
        concept = HyperplaneConcept(4, rng)
        frozen = concept.clone()
        concept.drift(rng, 1.0)
        assert not np.allclose(frozen.weights, concept.weights)


class TestSegment:
    def test_validation(self):
        with pytest.raises(ValueError):
            Segment("c", 5, kind="bogus")
        with pytest.raises(ValueError):
            Segment("c", 5, entry="bogus")
        with pytest.raises(ValueError):
            Segment("c", 0)


class TestStreamFromSchedule:
    def test_annotations_and_lengths(self, rng):
        concepts = {"a": GaussianMixtureConcept(2, 4, rng),
                    "b": GaussianMixtureConcept(2, 4, rng)}
        segments = [
            Segment("a", 3, kind="directional"),
            Segment("b", 2, entry="sudden"),
            Segment("a", 2, entry="reoccurring"),
        ]
        batches = list(stream_from_schedule(concepts, segments, 32, rng, 2))
        assert len(batches) == 7
        patterns = [b.pattern for b in batches]
        assert patterns[0] is None
        assert patterns[3] == Pattern.SUDDEN
        assert patterns[5] == Pattern.REOCCURRING
        assert patterns[1] == Pattern.SLIGHT

    def test_smooth_continuation_tagged_slight(self, rng):
        concepts = {"a": GaussianMixtureConcept(2, 4, rng)}
        segments = [Segment("a", 2), Segment("a", 2, entry="none")]
        batches = list(stream_from_schedule(concepts, segments, 16, rng, 2))
        assert batches[2].pattern == Pattern.SLIGHT

    def test_reoccurrence_returns_to_original_distribution(self, rng):
        concepts = {"a": GaussianMixtureConcept(2, 6, rng, scale=0.3)}
        segments = [
            Segment("a", 8, kind="directional", magnitude=1.0),
            Segment("a", 2, entry="reoccurring"),
        ]
        batches = list(stream_from_schedule(concepts, segments, 200, rng, 2))
        first_mean = batches[0].x.mean(axis=0)
        drifted_mean = batches[7].x.mean(axis=0)
        returned_mean = batches[8].x.mean(axis=0)
        assert (np.linalg.norm(returned_mean - first_mean)
                < np.linalg.norm(returned_mean - drifted_mean))

    def test_unknown_concept_raises(self, rng):
        with pytest.raises(KeyError):
            stream_from_schedule({}, [Segment("missing", 2)], 8, rng, 2)

    def test_empty_schedule_raises(self, rng):
        with pytest.raises(ValueError):
            stream_from_schedule({"a": GaussianMixtureConcept(2, 3, rng)},
                                 [], 8, rng, 2)

    def test_meta_carries_segment_info(self, rng):
        concepts = {"a": GaussianMixtureConcept(2, 4, rng)}
        batches = list(stream_from_schedule(
            concepts, [Segment("a", 2)], 8, rng, 2
        ))
        assert batches[0].meta["concept"] == "a"
        assert batches[0].meta["segment"] == 0


class TestPatternMixSchedule:
    def test_contains_all_patterns(self, rng):
        concepts, segments = pattern_mix_schedule(rng)
        batches = list(stream_from_schedule(concepts, segments, 16, rng, 4))
        patterns = {b.pattern for b in batches}
        assert Pattern.SLIGHT in patterns
        assert Pattern.SUDDEN in patterns
        assert Pattern.REOCCURRING in patterns

    @given(st.integers(min_value=8, max_value=20))
    @settings(max_examples=5, deadline=None)
    def test_total_length_matches_segments(self, segment_length):
        rng = np.random.default_rng(0)
        concepts, segments = pattern_mix_schedule(
            rng, segment_length=segment_length
        )
        batches = list(stream_from_schedule(concepts, segments, 4, rng, 4))
        assert len(batches) == sum(s.num_batches for s in segments)
