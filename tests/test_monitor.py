"""Tests for the serving monitor (repro.core.monitor)."""

import numpy as np
import pytest

from repro.core import Learner, ServingMonitor
from repro.core.learner import BatchReport
from repro.data import ElectricitySimulator
from repro.models import StreamingLR


def report(index=0, accuracy=0.9, strategy="multi_granularity",
           pattern="slight", reused=None, fallback=False):
    return BatchReport(
        batch_index=index, num_items=64, pattern=pattern, strategy=strategy,
        fallback=fallback, accuracy=accuracy, loss=0.1,
        predict_seconds=0.001, update_seconds=0.002, reused_batch=reused,
    )


class TestObserve:
    def test_counts_accumulate(self):
        monitor = ServingMonitor()
        monitor.observe(report(strategy="cec", pattern="sudden"))
        monitor.observe(report(reused=5, strategy="knowledge_reuse",
                               pattern="reoccurring"))
        monitor.observe(report(fallback=True))
        assert monitor.batches == 3
        assert monitor.items == 192
        assert monitor.strategy_counts["cec"] == 1
        assert monitor.pattern_counts["reoccurring"] == 1
        assert monitor.reuse_events == 1
        assert monitor.fallbacks == 1

    def test_rolling_accuracy(self):
        monitor = ServingMonitor(window=2)
        monitor.observe(report(accuracy=1.0))
        monitor.observe(report(accuracy=0.0))
        monitor.observe(report(accuracy=0.0))
        assert monitor.rolling_accuracy == pytest.approx(0.0)
        assert monitor.faded_accuracy < 0.5

    def test_unlabeled_reports_skip_accuracy(self):
        monitor = ServingMonitor()
        monitor.observe(report(accuracy=None))
        assert monitor.rolling_accuracy is None
        assert monitor.batches == 1

    def test_latency_percentiles(self):
        monitor = ServingMonitor()
        for _ in range(10):
            monitor.observe(report())
        stats = monitor.latency_percentiles()
        assert stats["predict"]["p50"] == pytest.approx(0.001)
        assert stats["update"]["p95"] == pytest.approx(0.002)

    def test_summary_contents(self):
        monitor = ServingMonitor()
        assert monitor.summary() == "no batches observed"
        monitor.observe(report())
        text = monitor.summary()
        assert "1 batches" in text
        assert "multi_granularity=1" in text
        assert "acc(window)=90.0%" in text


class TestTrack:
    def test_wraps_learner_loop(self):
        learner = Learner(
            lambda: StreamingLR(num_features=8, num_classes=2, lr=0.3,
                                seed=0),
            window_batches=4,
        )
        monitor = ServingMonitor(window=10)
        reports = list(monitor.track(
            learner, ElectricitySimulator(seed=0).stream(12, 64)
        ))
        assert len(reports) == 12
        assert monitor.batches == 12
        assert monitor.rolling_accuracy is not None
        assert "strategies:" in monitor.summary()


class TestSpanConsumption:
    def test_spans_found_under_any_parent(self):
        """learner.update / learner.predict spans nest under pipeline or
        worker spans in distributed traces; recursion must be uniform
        (regression: children were only visited under learner.predict)."""
        monitor = ServingMonitor()
        monitor.emit({
            "kind": "span", "name": "worker.step", "duration": 0.01,
            "children": [
                {"name": "learner.predict", "duration": 0.004,
                 "children": []},
                {"name": "learner.update", "duration": 0.006,
                 "children": []},
            ],
        })
        stats = monitor.latency_percentiles()
        assert stats["predict"]["p50"] == pytest.approx(0.004)
        assert stats["update"]["p50"] == pytest.approx(0.006)

    def test_update_nested_under_predict_still_counted(self):
        monitor = ServingMonitor()
        monitor.emit({
            "kind": "span", "name": "learner.predict", "duration": 0.004,
            "children": [{"name": "learner.update", "duration": 0.002,
                          "children": []}],
        })
        stats = monitor.latency_percentiles()
        assert stats["predict"]["p50"] == pytest.approx(0.004)
        assert stats["update"]["p50"] == pytest.approx(0.002)
