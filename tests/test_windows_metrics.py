"""Tests for windowed/fading prequential accuracy (repro.metrics.windows)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    FadingAccuracy,
    SlidingWindowAccuracy,
    fading_series,
    sliding_series,
)


class TestSlidingWindow:
    def test_mean_of_recent_values(self):
        tracker = SlidingWindowAccuracy(window=3)
        for value in (0.0, 0.0, 1.0, 1.0, 1.0):
            tracker.update(value)
        assert tracker.value == pytest.approx(1.0)

    def test_partial_window(self):
        tracker = SlidingWindowAccuracy(window=10)
        tracker.update(0.4)
        tracker.update(0.6)
        assert tracker.value == pytest.approx(0.5)

    def test_no_observations_raises(self):
        with pytest.raises(RuntimeError):
            SlidingWindowAccuracy().value

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowAccuracy(window=0)
        with pytest.raises(ValueError):
            SlidingWindowAccuracy().update(1.5)

    def test_series_helper(self):
        smoothed = sliding_series([0.0, 1.0, 1.0, 1.0], window=2)
        np.testing.assert_allclose(smoothed, [0.0, 0.5, 1.0, 1.0])


class TestFading:
    def test_constant_series_converges_to_constant(self):
        tracker = FadingAccuracy(alpha=0.9)
        for _ in range(100):
            tracker.update(0.7)
        assert tracker.value == pytest.approx(0.7)

    def test_reacts_faster_than_global_mean(self):
        # Long run at 0.9 then a drop to 0.1: the faded estimate falls
        # below the global mean quickly.
        values = [0.9] * 50 + [0.1] * 10
        faded = fading_series(values, alpha=0.9)[-1]
        global_mean = np.mean(values)
        assert faded < global_mean

    def test_recency_ordering(self):
        # A recent improvement shows up more in the faded estimate.
        improving = fading_series([0.2] * 20 + [0.9] * 5, alpha=0.9)[-1]
        worsening = fading_series([0.9] * 5 + [0.2] * 20, alpha=0.9)[-1]
        assert improving > worsening

    def test_no_observations_raises(self):
        with pytest.raises(RuntimeError):
            FadingAccuracy().value

    def test_validation(self):
        with pytest.raises(ValueError):
            FadingAccuracy(alpha=1.0)
        with pytest.raises(ValueError):
            FadingAccuracy().update(-0.1)

    @given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=50),
           st.floats(0.5, 0.99))
    @settings(max_examples=40, deadline=None)
    def test_faded_value_bounded_by_series_range(self, values, alpha):
        faded = fading_series(values, alpha=alpha)
        assert (faded >= min(values) - 1e-9).all()
        assert (faded <= max(values) + 1e-9).all()
