"""Tests for the MMD shift metric (repro.shift.mmd)."""

import numpy as np
import pytest

from repro.shift import MMDShiftScorer, median_heuristic_bandwidth, mmd_rbf


class TestMMD:
    def test_same_distribution_near_zero(self, rng):
        x = rng.normal(size=(200, 4))
        y = rng.normal(size=(200, 4))
        assert mmd_rbf(x, y, seed=0) < 0.02

    def test_shifted_distribution_large(self, rng):
        x = rng.normal(size=(200, 4))
        y = rng.normal(size=(200, 4)) + 3.0
        assert mmd_rbf(x, y, seed=0) > 0.2

    def test_monotone_in_shift_size(self, rng):
        x = rng.normal(size=(200, 4))
        small = mmd_rbf(x, rng.normal(size=(200, 4)) + 0.5,
                        bandwidth=1.5, seed=0)
        large = mmd_rbf(x, rng.normal(size=(200, 4)) + 3.0,
                        bandwidth=1.5, seed=0)
        assert large > small

    def test_detects_variance_only_change(self, rng):
        """The whole point over Eq. 6: same mean, different shape."""
        x = rng.normal(scale=1.0, size=(300, 4))
        y = rng.normal(scale=3.0, size=(300, 4))
        same = mmd_rbf(x, rng.normal(scale=1.0, size=(300, 4)),
                       bandwidth=2.0, seed=0)
        different = mmd_rbf(x, y, bandwidth=2.0, seed=0)
        assert different > 5 * max(same, 1e-6)
        # And the mean-based distance barely moves:
        mean_gap = np.linalg.norm(x.mean(axis=0) - y.mean(axis=0))
        assert mean_gap < 0.5

    def test_symmetry(self, rng):
        x = rng.normal(size=(100, 3))
        y = rng.normal(size=(100, 3)) + 1.0
        forward = mmd_rbf(x, y, bandwidth=1.0, seed=0)
        backward = mmd_rbf(y, x, bandwidth=1.0, seed=0)
        assert forward == pytest.approx(backward, rel=1e-9)

    def test_subsampling_bounds_cost(self, rng):
        x = rng.normal(size=(5000, 4))
        y = rng.normal(size=(5000, 4)) + 2.0
        value = mmd_rbf(x, y, max_points=64, seed=0)
        assert value > 0.1  # still detects the shift after subsampling

    def test_too_few_points_rejected(self, rng):
        with pytest.raises(ValueError):
            mmd_rbf(rng.normal(size=(1, 3)), rng.normal(size=(10, 3)))

    def test_nonnegative(self, rng):
        x = rng.normal(size=(50, 2))
        assert mmd_rbf(x, x.copy(), bandwidth=1.0) >= 0.0


class TestMedianHeuristic:
    def test_scales_with_data_spread(self, rng):
        tight = median_heuristic_bandwidth(
            rng.normal(scale=0.1, size=(100, 3)),
            rng.normal(scale=0.1, size=(100, 3)),
        )
        wide = median_heuristic_bandwidth(
            rng.normal(scale=10.0, size=(100, 3)),
            rng.normal(scale=10.0, size=(100, 3)),
        )
        assert wide > 10 * tight

    def test_never_zero(self):
        x = np.ones((20, 2))
        assert median_heuristic_bandwidth(x, x) > 0


class TestMMDShiftScorer:
    def test_first_batch_returns_none(self, rng):
        scorer = MMDShiftScorer(seed=0)
        assert scorer.score(rng.normal(size=(64, 3))) is None

    def test_stable_stream_scores_low_shift_scores_high(self, rng):
        scorer = MMDShiftScorer(seed=0)
        scorer.score(rng.normal(size=(128, 3)))
        stable = scorer.score(rng.normal(size=(128, 3)))
        jumped = scorer.score(rng.normal(size=(128, 3)) + 4.0)
        assert jumped > 10 * max(stable, 1e-9)

    def test_bandwidth_fixed_after_first_pair(self, rng):
        scorer = MMDShiftScorer(seed=0)
        scorer.score(rng.normal(size=(64, 3)))
        scorer.score(rng.normal(size=(64, 3)))
        bandwidth = scorer.bandwidth
        scorer.score(rng.normal(size=(64, 3)) * 100)
        assert scorer.bandwidth == bandwidth

    def test_feeds_severity_tracker(self, rng):
        """End-to-end: MMD distances drive the paper's severity test."""
        from repro.shift import SeverityTracker
        scorer = MMDShiftScorer(seed=0)
        tracker = SeverityTracker(window=20, decay=1.0)
        scorer.score(rng.normal(size=(128, 4)))
        for _ in range(15):
            tracker.observe(scorer.score(rng.normal(size=(128, 4))))
        severe = scorer.score(rng.normal(size=(128, 4)) + 4.0)
        assert tracker.score(severe) > 1.96
