"""Tests for learner checkpointing (repro.core.persistence)."""

import numpy as np
import pytest

from repro.core import Learner, load_learner, save_learner
from repro.data import NSLKDDSimulator
from repro.models import StreamingMLP


def factory():
    return StreamingMLP(num_features=20, num_classes=5, lr=0.3, seed=0)


def make_learner(**kwargs):
    return Learner(factory, window_batches=4, seed=0, **kwargs)


@pytest.fixture
def trained_learner():
    learner = make_learner()
    for batch in NSLKDDSimulator(seed=1).stream(30, batch_size=128):
        learner.process(batch)
    return learner


class TestRoundTrip:
    def test_predictions_identical_after_restore(self, trained_learner,
                                                 tmp_path, rng):
        path = tmp_path / "checkpoint.npz"
        written = save_learner(trained_learner, path)
        assert written > 0
        assert path.exists()

        restored = load_learner(make_learner(), path)
        probe = rng.normal(size=(64, 20))
        for original_level, restored_level in zip(
                trained_learner.ensemble.levels, restored.ensemble.levels):
            np.testing.assert_allclose(
                restored_level.model.predict_proba(probe),
                original_level.model.predict_proba(probe.copy()),
            )

    def test_knowledge_store_restored(self, trained_learner, tmp_path):
        path = tmp_path / "checkpoint.npz"
        save_learner(trained_learner, path)
        restored = load_learner(make_learner(), path)
        assert len(restored.knowledge) == len(trained_learner.knowledge)
        for original, copy in zip(trained_learner.knowledge.entries,
                                  restored.knowledge.entries):
            assert original.model_kind == copy.model_kind
            assert original.batch_index == copy.batch_index
            np.testing.assert_array_equal(original.embedding, copy.embedding)

    def test_experience_buffer_restored(self, trained_learner, tmp_path):
        path = tmp_path / "checkpoint.npz"
        save_learner(trained_learner, path)
        restored = load_learner(make_learner(), path)
        assert len(restored.experience) == len(trained_learner.experience)
        original_x, original_y = trained_learner.experience.recent(32)
        restored_x, restored_y = restored.experience.recent(32)
        np.testing.assert_array_equal(original_x, restored_x)
        np.testing.assert_array_equal(original_y, restored_y)

    def test_classifier_state_restored(self, trained_learner, tmp_path):
        path = tmp_path / "checkpoint.npz"
        save_learner(trained_learner, path)
        restored = load_learner(make_learner(), path)
        np.testing.assert_array_equal(
            restored.classifier.pca.components,
            trained_learner.classifier.pca.components,
        )
        assert (len(restored.classifier.severity)
                == len(trained_learner.classifier.severity))
        assert (len(restored.classifier.history)
                == len(trained_learner.classifier.history))

    def test_restored_learner_continues_identically(self, tmp_path):
        """The acid test: process the same future batches from a saved and
        a live learner — reports must match."""
        batches = NSLKDDSimulator(seed=2).stream(40, batch_size=128
                                                 ).materialize()
        live = make_learner()
        for batch in batches[:25]:
            live.process(batch)

        path = tmp_path / "mid.npz"
        save_learner(live, path)
        resumed = load_learner(make_learner(), path)

        for batch in batches[25:]:
            live_report = live.process(batch)
            resumed_report = resumed.process(batch)
            assert live_report.strategy == resumed_report.strategy
            assert live_report.pattern == resumed_report.pattern
            assert live_report.accuracy == pytest.approx(
                resumed_report.accuracy
            )


class TestResilienceStateRoundTrip:
    """Regression: degrade/breaker posture must survive a checkpoint.

    Before the fix, ``save_learner`` dropped the degrade flag, the
    breaker's circuits, and the processed/strategy counters — a serving
    registry that evicted a degraded tenant would rehydrate it with every
    circuit silently closed.
    """

    def test_degrade_and_open_circuit_survive_restore(self, tmp_path):
        learner = make_learner(degrade=True, breaker_threshold=2,
                               breaker_cooldown=50)
        for batch in NSLKDDSimulator(seed=1).stream(3, batch_size=128):
            learner.process(batch)
        learner.breaker.record_failure("cec")
        learner.breaker.record_failure("cec")
        assert learner.breaker.is_open("cec")

        path = tmp_path / "degraded.npz"
        save_learner(learner, path)
        restored = load_learner(make_learner(), path)

        assert restored.degrade is True
        assert restored.breaker is not None
        assert restored.breaker.is_open("cec")
        assert restored.breaker.state_dict() == learner.breaker.state_dict()
        assert restored._processed == learner._processed
        assert restored._strategy_counts == learner._strategy_counts

    def test_cooldown_clock_resumes_not_resets(self, tmp_path):
        learner = make_learner(degrade=True, breaker_threshold=1,
                               breaker_cooldown=4)
        learner.breaker.tick()
        learner.breaker.tick()
        learner.breaker.record_failure("asw")
        path = tmp_path / "mid-cooldown.npz"
        save_learner(learner, path)
        restored = load_learner(make_learner(), path)
        # Ticks reach the recorded cooldown horizon exactly when the
        # uninterrupted learner's would — the clock was not reset.
        for _ in range(4):
            assert restored.breaker.is_open("asw")
            restored.breaker.tick()
            learner.breaker.tick()
        assert not restored.breaker.is_open("asw")
        assert not learner.breaker.is_open("asw")

    def test_old_checkpoints_without_resilience_keys_load(self, tmp_path):
        import json

        import numpy as np

        path = tmp_path / "old.npz"
        save_learner(make_learner(), path)
        # Strip the new meta keys, simulating a pre-fix checkpoint.
        meta_key = "__freewayml_meta__"
        with np.load(path, allow_pickle=False) as bundle:
            arrays = {name: bundle[name] for name in bundle.files}
        meta = json.loads(bytes(arrays[meta_key]).decode("utf-8"))
        for key in ("processed", "strategy_counts", "degrade", "breaker"):
            meta.pop(key, None)
        arrays[meta_key] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        np.savez(path, **arrays)
        restored = load_learner(make_learner(), path)
        assert restored.degrade is False
        assert restored.breaker is None


class TestValidation:
    def test_level_count_mismatch_rejected(self, trained_learner, tmp_path):
        path = tmp_path / "checkpoint.npz"
        save_learner(trained_learner, path)
        wrong = Learner(factory, num_models=3, window_batches=4, seed=0)
        with pytest.raises(ValueError, match="granularity levels"):
            load_learner(wrong, path)

    def test_untrained_learner_round_trips(self, tmp_path):
        fresh = make_learner()
        path = tmp_path / "fresh.npz"
        save_learner(fresh, path)
        restored = load_learner(make_learner(), path)
        assert restored._batch_counter == 0
        assert len(restored.knowledge) == 0
