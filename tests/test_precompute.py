"""Tests for the pre-computing window (repro.core.precompute)."""

import numpy as np
import pytest

from repro.core import PrecomputingWindow
from repro.models import StreamingLR


def model(seed=0, lr=0.1):
    return StreamingLR(num_features=4, num_classes=2, lr=lr, seed=seed)


class TestEquivalence:
    def test_matches_full_batch_update_exactly(self, blob_data):
        """The paper's claim: pre-computed subset gradients aggregate to the
        same update as one full-window gradient step."""
        x, y = blob_data
        reference = model()
        reference.partial_fit(x, y)

        precomputed = model()
        window = PrecomputingWindow(precomputed)
        for start in range(0, len(x), 50):
            window.accumulate(x[start:start + 50], y[start:start + 50])
        window.apply()

        for pa, pb in zip(reference.module.parameters(),
                          precomputed.module.parameters()):
            np.testing.assert_allclose(pa.data, pb.data, atol=1e-12)

    def test_uneven_subsets_weighted_correctly(self, blob_data):
        x, y = blob_data
        reference = model()
        reference.partial_fit(x, y)

        precomputed = model()
        window = PrecomputingWindow(precomputed)
        window.accumulate(x[:10], y[:10])
        window.accumulate(x[10:150], y[10:150])
        window.apply(x[150:], y[150:])  # final subset folded in at apply

        for pa, pb in zip(reference.module.parameters(),
                          precomputed.module.parameters()):
            np.testing.assert_allclose(pa.data, pb.data, atol=1e-12)


class TestBookkeeping:
    def test_pending_samples(self, blob_data):
        x, y = blob_data
        window = PrecomputingWindow(model())
        window.accumulate(x[:30], y[:30])
        assert window.pending_samples == 30
        assert window.subsets_accumulated == 1

    def test_apply_resets(self, blob_data):
        x, y = blob_data
        window = PrecomputingWindow(model())
        window.accumulate(x[:30], y[:30])
        window.apply()
        assert window.pending_samples == 0
        assert window.subsets_accumulated == 0

    def test_reset_discards(self, blob_data):
        x, y = blob_data
        target = model()
        before = target.state_dict()
        window = PrecomputingWindow(target)
        window.accumulate(x[:30], y[:30])
        window.reset()
        with pytest.raises(RuntimeError):
            window.apply()
        for name, value in target.state_dict().items():
            np.testing.assert_array_equal(value, before[name])

    def test_apply_without_accumulate_raises(self):
        with pytest.raises(RuntimeError):
            PrecomputingWindow(model()).apply()

    def test_apply_final_subset_requires_labels(self, blob_data):
        x, y = blob_data
        window = PrecomputingWindow(model())
        with pytest.raises(ValueError):
            window.apply(x[:10], None)

    def test_empty_subset_rejected(self):
        window = PrecomputingWindow(model())
        with pytest.raises(ValueError):
            window.accumulate(np.zeros((0, 4)), np.zeros(0))
