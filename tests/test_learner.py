"""Tests for the FreewayML Learner facade (repro.core.learner)."""

import numpy as np
import pytest

from repro.core import Learner, RateAwareAdjuster, Strategy
from repro.data import Batch, NSLKDDSimulator, Pattern
from repro.models import StreamingLR, StreamingMLP


def lr_factory():
    return StreamingLR(num_features=6, num_classes=3, lr=0.3, seed=0)


def gaussian_stream(rng, centers, per_center=8, n=64, d=6, classes=3):
    """Batches hopping between Gaussian concepts; labels = nearest anchor."""
    anchors = rng.normal(size=(classes, d)) * 4.0
    index = 0
    for center in centers:
        for _ in range(per_center):
            x = rng.normal(size=(n, d)) + center
            distances = np.linalg.norm(
                x[:, None, :] - anchors[None], axis=2
            )
            y = distances.argmin(axis=1)
            yield Batch(x, y, index=index)
            index += 1


class TestConstruction:
    def test_basic(self):
        learner = Learner(lr_factory)
        assert learner.num_classes == 3
        assert len(learner.ensemble.levels) == 2

    def test_model_ladder(self):
        learner = Learner(lr_factory, num_models=3, window_batches=4)
        sizes = [level.window_batches for level in learner.ensemble.levels]
        assert sizes == [1, 4, 16]

    def test_rejects_non_streaming_model(self):
        with pytest.raises(TypeError):
            Learner(lambda: object())

    def test_rejects_bad_num_models(self):
        with pytest.raises(ValueError):
            Learner(lr_factory, num_models=0)

    def test_from_paper_config_with_template(self):
        template = StreamingLR(num_features=6, num_classes=3, seed=1)
        learner = Learner.from_paper_config(
            model=template, num_models=2, mini_batch=1024,
            knowledge_capacity=15, experience_expiration=7, alpha=2.5,
        )
        assert learner.knowledge.capacity == 15
        assert learner.experience.expiration == 7
        assert learner.classifier.alpha == 2.5

    def test_from_paper_config_with_factory(self):
        learner = Learner.from_paper_config(model=lr_factory)
        assert learner.num_classes == 3


class TestProcessReports:
    def test_report_fields(self, rng):
        learner = Learner(lr_factory, window_batches=4)
        batch = next(gaussian_stream(rng, [0.0]))
        report = learner.process(batch)
        assert report.batch_index == 0
        assert report.num_items == 64
        assert report.accuracy is not None
        assert report.loss is not None
        assert report.predict_seconds >= 0
        assert report.update_seconds >= 0

    def test_unlabeled_batch_inference_only(self, rng):
        learner = Learner(lr_factory, window_batches=4)
        labeled = next(gaussian_stream(rng, [0.0]))
        learner.process(labeled)
        report = learner.process(labeled.without_labels())
        assert report.accuracy is None
        assert report.loss is None

    def test_accuracy_improves_on_stationary_stream(self, rng):
        learner = Learner(lr_factory, window_batches=4)
        reports = [learner.process(b)
                   for b in gaussian_stream(rng, [0.0], per_center=30)]
        early = np.mean([r.accuracy for r in reports[1:6]])
        late = np.mean([r.accuracy for r in reports[-5:]])
        assert late > early

    def test_run_with_max_batches(self, rng):
        learner = Learner(lr_factory, window_batches=4)
        reports = learner.run(gaussian_stream(rng, [0.0], per_center=20),
                              max_batches=5)
        assert len(reports) == 5


class TestStrategyRouting:
    def test_slight_stream_uses_ensemble(self, rng):
        learner = Learner(lr_factory, window_batches=4)
        reports = [learner.process(b)
                   for b in gaussian_stream(rng, [0.0], per_center=15)]
        strategies = {r.strategy for r in reports}
        assert strategies == {Strategy.MULTI_GRANULARITY.value}

    def test_sudden_shift_triggers_cec(self, rng):
        learner = Learner(lr_factory, window_batches=4,
                          use_confidence_channel=False)
        centers = [np.zeros(6), np.full(6, 25.0)]
        reports = [learner.process(b)
                   for b in gaussian_stream(rng, centers, per_center=12)]
        boundary = reports[12]
        assert boundary.pattern == "sudden"
        assert boundary.strategy == Strategy.CEC.value

    def test_reoccurring_shift_reuses_knowledge(self, rng):
        learner = Learner(lr_factory, window_batches=4)
        centers = [np.zeros(6), np.full(6, 25.0), np.zeros(6)]
        reports = [learner.process(b)
                   for b in gaussian_stream(rng, centers, per_center=12)]
        boundary = reports[24]
        assert boundary.pattern == "reoccurring"
        assert boundary.strategy == Strategy.KNOWLEDGE_REUSE.value
        assert boundary.reused_batch is not None

    def test_knowledge_accumulates(self, rng):
        learner = Learner(lr_factory, window_batches=4)
        for b in gaussian_stream(rng, [0.0], per_center=20):
            learner.process(b)
        assert len(learner.knowledge) > 0

    def test_confidence_channel_catches_concept_only_drift(self, rng):
        """P(x) constant, P(y|x) flips: only the confidence channel can see
        this (the paper's distribution detector is blind to it)."""
        anchors = np.random.default_rng(0).normal(size=(3, 6)) * 4.0

        def batch(flip, index):
            x = rng.normal(size=(64, 6))
            distances = np.linalg.norm(x[:, None, :] - anchors[None], axis=2)
            y = distances.argmin(axis=1)
            if flip:
                y = (y + 1) % 3
            return Batch(x, y, index=index)

        learner = Learner(lr_factory, window_batches=4)
        patterns = []
        strategies = []
        for i in range(30):
            report = learner.process(batch(i >= 20, i))
            patterns.append(report.pattern)
            strategies.append(report.strategy)
        # The error channel needs one labeled batch to see the flip, so the
        # alert fires from batch 21 on.
        assert "sudden" in patterns[21:25]
        assert Strategy.CEC.value in strategies[21:25]

    def test_confidence_channel_disabled(self, rng):
        learner = Learner(lr_factory, use_confidence_channel=False)
        batch = next(gaussian_stream(rng, [0.0]))
        learner.process(batch)
        # The tracker exists but must never fire.
        assert learner._confidence is not None
        report = learner.process(batch)
        assert report.pattern in ("slight", "warmup")


class TestWarmStartVerification:
    def test_spurious_match_cannot_poison_resident_models(self, rng):
        """Warm start happens only after *labeled* verification at update
        time, so garbage knowledge matching by distance never replaces a
        better resident model."""
        learner = Learner(lr_factory, window_batches=4)
        batches = list(gaussian_stream(rng, [0.0], per_center=20))
        for b in batches[:-1]:
            learner.process(b)
        final = batches[-1]
        resident_accuracy = (
            learner.ensemble.short_level.model.predict(final.x) == final.y
        ).mean()
        assert resident_accuracy > 0.6  # resident model is competent
        # Poison the store with garbage weights at the current embedding.
        template = learner.ensemble.short_level.model.state_dict()
        garbage = {name: np.zeros_like(value)
                   for name, value in template.items()}
        embedding = learner.classifier.pca.batch_embedding(final.x)
        learner.knowledge.preserve(embedding, garbage, "short", 0.1, 99)
        learner.process(final)  # predict (may trust the match) + update
        after = (
            learner.ensemble.short_level.model.predict(final.x) == final.y
        ).mean()
        assert after > 0.6  # garbage was rejected by labeled verification

    def test_genuine_match_is_adopted(self, rng):
        """Knowledge that beats the resident model on the labeled batch
        replaces all granularity levels."""
        learner = Learner(lr_factory, window_batches=4)
        centers = [np.zeros(6), np.full(6, 25.0), np.zeros(6)]
        reports = [learner.process(b)
                   for b in gaussian_stream(rng, centers, per_center=12)]
        boundary = reports[24]
        assert boundary.strategy == Strategy.KNOWLEDGE_REUSE.value
        # Post-reuse accuracy recovers immediately (warm start adopted).
        post = np.mean([r.accuracy for r in reports[25:29]])
        assert post > 0.8


class TestRateAdjusterIntegration:
    def test_throttled_batches_skip_inference(self, rng):
        adjuster = RateAwareAdjuster(high_rate=None)
        adjuster.inference_stride = 2  # force throttling

        # Disable further adjustment by keeping high_rate None.
        learner = Learner(lr_factory, window_batches=4, adjuster=adjuster)
        reports = [learner.process(b)
                   for b in gaussian_stream(rng, [0.0], per_center=6)]
        skipped = [r.skipped_inference for r in reports]
        assert skipped == [False, True] * 3

    def test_skipped_batches_still_train(self, rng):
        adjuster = RateAwareAdjuster(high_rate=None)
        adjuster.inference_stride = 2
        learner = Learner(lr_factory, window_batches=4, adjuster=adjuster)
        reports = [learner.process(b)
                   for b in gaussian_stream(rng, [0.0], per_center=6)]
        assert all(r.loss is not None for r in reports)


class TestEndToEnd:
    def test_beats_plain_model_on_reoccurring_workload(self):
        """The headline reproduction check at unit-test scale."""
        generator = NSLKDDSimulator(seed=3)
        batches = generator.stream(80, batch_size=128).materialize()

        def factory():
            return StreamingMLP(num_features=20, num_classes=5,
                                lr=0.3, seed=0)

        plain = factory()
        plain_accs = []
        for batch in batches:
            plain_accs.append((plain.predict(batch.x) == batch.y).mean())
            plain.partial_fit(batch.x, batch.y)

        learner = Learner(factory, window_batches=8, seed=0)
        freeway_accs = [learner.process(batch).accuracy for batch in batches]

        assert np.mean(freeway_accs) > np.mean(plain_accs)

    def test_reuse_wins_big_at_reoccurrence(self):
        generator = NSLKDDSimulator(seed=3)
        batches = generator.stream(80, batch_size=128).materialize()

        def factory():
            return StreamingMLP(num_features=20, num_classes=5,
                                lr=0.3, seed=0)

        plain = factory()
        plain_accs = []
        for batch in batches:
            plain_accs.append((plain.predict(batch.x) == batch.y).mean())
            plain.partial_fit(batch.x, batch.y)

        learner = Learner(factory, window_batches=8, seed=0)
        reports = [learner.process(batch) for batch in batches]
        reuse_batches = [
            (r.accuracy, plain_accs[i]) for i, r in enumerate(reports)
            if r.strategy == Strategy.KNOWLEDGE_REUSE.value
        ]
        assert reuse_batches, "knowledge reuse never fired"
        freeway, plain_on_same = np.array(reuse_batches).T
        assert freeway.mean() > plain_on_same.mean() + 0.3
