"""Tests for synthetic generators (repro.data.synth)."""

import numpy as np
import pytest

from repro.data import HyperplaneGenerator, Pattern, SEAGenerator


class TestHyperplaneGenerator:
    def test_shapes_and_metadata(self):
        gen = HyperplaneGenerator(num_features=8, seed=0)
        stream = gen.stream(5, batch_size=64)
        assert stream.num_features == 8
        assert stream.num_classes == 2
        batches = stream.materialize()
        assert len(batches) == 5
        assert batches[0].x.shape == (64, 8)

    def test_deterministic_given_seed(self):
        a = HyperplaneGenerator(seed=7).stream(3, 32).materialize()
        b = HyperplaneGenerator(seed=7).stream(3, 32).materialize()
        for ba, bb in zip(a, b):
            np.testing.assert_array_equal(ba.x, bb.x)
            np.testing.assert_array_equal(ba.y, bb.y)

    def test_different_seeds_differ(self):
        a = HyperplaneGenerator(seed=1).stream(1, 32).materialize()[0]
        b = HyperplaneGenerator(seed=2).stream(1, 32).materialize()[0]
        assert not np.array_equal(a.x, b.x)

    def test_features_in_unit_cube(self):
        batch = HyperplaneGenerator(seed=0).stream(1, 256).materialize()[0]
        assert batch.x.min() >= 0.0
        assert batch.x.max() <= 1.0

    def test_noise_rate(self):
        gen = HyperplaneGenerator(noise=0.0, magnitude=0.0, seed=0)
        batch = gen.stream(1, 2000).materialize()[0]
        # With no noise the hyperplane rule is exact; roughly balanced.
        assert 0.3 < batch.y.mean() < 0.7

    def test_weights_drift_over_time(self):
        gen = HyperplaneGenerator(magnitude=0.1, seed=0)
        batches = gen.stream(50, 512).materialize()
        # Re-fit simple logistic direction early vs late: class balance of
        # late batches under the early rule should degrade.
        early, late = batches[0], batches[-1]
        assert early.pattern is None
        assert late.pattern == Pattern.SLIGHT

    def test_all_slight_annotations(self):
        batches = HyperplaneGenerator(seed=0).stream(10, 32).materialize()
        assert all(b.pattern == Pattern.SLIGHT for b in batches[1:])

    def test_validation(self):
        with pytest.raises(ValueError):
            HyperplaneGenerator(num_features=4, drift_features=5)
        with pytest.raises(ValueError):
            HyperplaneGenerator(concept_switch_every=1)
        with pytest.raises(ValueError):
            HyperplaneGenerator(num_concepts=1)

    def test_concept_switching_annotations(self):
        gen = HyperplaneGenerator(concept_switch_every=10, num_concepts=2,
                                  seed=0)
        batches = gen.stream(30, 32).materialize()
        patterns = [b.pattern for b in batches]
        assert patterns[10] == Pattern.SUDDEN       # first switch to pool[1]
        assert patterns[11] == Pattern.SUDDEN       # disruption region
        assert patterns[20] == Pattern.REOCCURRING  # back to pool[0]
        assert patterns[5] == Pattern.SLIGHT

    def test_concept_switch_is_catastrophic(self):
        """The new hyperplane must actively mispredict under the old rule."""
        gen = HyperplaneGenerator(concept_switch_every=10, noise=0.0,
                                  magnitude=0.0, seed=0)
        batches = gen.stream(12, 2000).materialize()
        # Batch 8 is pure old concept (batch 9 carries the continuity leak).
        before, after = batches[8], batches[10]
        # Rule learned pre-switch = the batch-9 labeling function.
        # Cross-label: how often does the old rule agree with new labels?
        # Labels invert across the switch: a separator fit on the old
        # concept actively mispredicts the new one.
        from repro.models import StreamingLR
        model = StreamingLR(num_features=10, num_classes=2, lr=0.5, seed=0)
        for _ in range(100):
            model.partial_fit(before.x, before.y)
        assert (model.predict(before.x) == before.y).mean() > 0.85
        assert (model.predict(after.x) == after.y).mean() < 0.3


class TestSEAGenerator:
    def test_label_rule(self):
        gen = SEAGenerator(noise=0.0, seed=0)
        batch = gen.stream(1, 512).materialize()[0]
        theta = batch.meta["theta"]
        expected = (batch.x[:, 0] + batch.x[:, 1]) <= theta
        np.testing.assert_array_equal(batch.y, expected.astype(np.int64))

    def test_third_feature_irrelevant(self):
        gen = SEAGenerator(noise=0.0, seed=0)
        batch = gen.stream(1, 4000).materialize()[0]
        # Correlation of label with f3 should be negligible.
        corr = np.corrcoef(batch.x[:, 2], batch.y)[0, 1]
        assert abs(corr) < 0.05

    def test_theta_cycles_through_variants(self):
        gen = SEAGenerator(batches_per_concept=2, seed=0)
        batches = gen.stream(10, 16).materialize()
        thetas = [b.meta["theta"] for b in batches]
        assert thetas[0:2] == [8.0, 8.0]
        assert thetas[2:4] == [9.0, 9.0]
        assert thetas[8:10] == [8.0, 8.0]  # cycle wraps

    def test_first_switch_sudden_then_reoccurring(self):
        gen = SEAGenerator(batches_per_concept=5, seed=0)
        batches = gen.stream(25, 16).materialize()
        patterns = [b.pattern for b in batches]
        assert patterns[5] == Pattern.SUDDEN        # theta 8 -> 9, new
        assert patterns[6] == Pattern.SUDDEN        # disruption region
        assert patterns[8] == Pattern.SLIGHT        # region over
        assert patterns[10] == Pattern.SUDDEN       # -> 7, new
        assert patterns[20] == Pattern.REOCCURRING  # back to 8
        assert patterns[4] == Pattern.SLIGHT

    def test_noise_flips(self):
        gen = SEAGenerator(noise=0.3, seed=0)
        batch = gen.stream(1, 4000).materialize()[0]
        clean = ((batch.x[:, 0] + batch.x[:, 1]) <= batch.meta["theta"])
        flip_rate = (batch.y != clean).mean()
        assert 0.25 < flip_rate < 0.35

    def test_deterministic(self):
        a = SEAGenerator(seed=3).stream(2, 64).materialize()
        b = SEAGenerator(seed=3).stream(2, 64).materialize()
        np.testing.assert_array_equal(a[1].x, b[1].x)
