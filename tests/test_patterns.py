"""Tests for the pattern classifier (repro.shift.patterns, Section III-C)."""

import numpy as np
import pytest

from repro.shift import PatternClassifier, ShiftPattern


def make_classifier(**kwargs):
    defaults = dict(alpha=1.96, warmup_points=50, severity_window=20)
    defaults.update(kwargs)
    return PatternClassifier(**defaults)


def gaussian_batch(rng, center, n=64, d=6, scale=0.3):
    return rng.normal(size=(n, d)) * scale + np.asarray(center)


@pytest.fixture
def centers():
    c0 = np.zeros(6)
    c1 = np.full(6, 8.0)
    c2 = np.full(6, -8.0)
    return c0, c1, c2


class TestWarmup:
    def test_warmup_until_pca_fits(self, rng):
        clf = make_classifier(warmup_points=200)
        a1 = clf.assess(gaussian_batch(rng, np.zeros(6), n=64))
        assert a1.pattern is ShiftPattern.WARMUP
        assert a1.embedding is None
        # Enough points accumulated now.
        a2 = clf.assess(gaussian_batch(rng, np.zeros(6), n=200))
        assert a2.pattern is ShiftPattern.WARMUP
        assert a2.embedding is not None

    def test_first_batch_after_fit_has_no_distance(self, rng):
        clf = make_classifier(warmup_points=2)
        a = clf.assess(gaussian_batch(rng, np.zeros(6)))
        assert a.pattern is ShiftPattern.WARMUP
        assert a.distance is None


class TestSlightShifts:
    def test_stationary_stream_is_slight(self, rng, centers):
        c0, _, _ = centers
        clf = make_classifier(warmup_points=2)
        patterns = [clf.assess(gaussian_batch(rng, c0)).pattern
                    for _ in range(20)]
        assert all(p in (ShiftPattern.WARMUP, ShiftPattern.SLIGHT)
                   for p in patterns)
        assert patterns[-1] is ShiftPattern.SLIGHT

    def test_gradual_drift_is_slight(self, rng):
        clf = make_classifier(warmup_points=2)
        center = np.zeros(6)
        patterns = []
        for _ in range(20):
            patterns.append(clf.assess(gaussian_batch(rng, center)).pattern)
            center = center + 0.05  # steady directional creep
        assert ShiftPattern.SUDDEN not in patterns[5:]

    def test_severity_reported(self, rng, centers):
        c0, _, _ = centers
        clf = make_classifier(warmup_points=2)
        for _ in range(10):
            assessment = clf.assess(gaussian_batch(rng, c0))
        assert assessment.severity is not None
        assert assessment.distance is not None


class TestSuddenShifts:
    def test_jump_to_new_distribution_is_sudden(self, rng, centers):
        c0, c1, _ = centers
        clf = make_classifier(warmup_points=2)
        for _ in range(12):
            clf.assess(gaussian_batch(rng, c0))
        assessment = clf.assess(gaussian_batch(rng, c1))
        assert assessment.pattern is ShiftPattern.SUDDEN
        assert assessment.severity > clf.alpha

    def test_alpha_controls_sensitivity(self, rng, centers):
        c0, c1, _ = centers

        def final_pattern(alpha):
            clf = make_classifier(alpha=alpha, warmup_points=2)
            rng_local = np.random.default_rng(0)
            for _ in range(12):
                clf.assess(gaussian_batch(rng_local, c0))
            return clf.assess(gaussian_batch(rng_local, c1)).pattern

        assert final_pattern(1.96) is ShiftPattern.SUDDEN
        assert final_pattern(1e9) is ShiftPattern.SLIGHT


class TestReoccurringShifts:
    def test_return_to_old_distribution_is_reoccurring(self, rng, centers):
        c0, c1, _ = centers
        clf = make_classifier(warmup_points=2)
        for _ in range(12):
            clf.assess(gaussian_batch(rng, c0))
        for _ in range(8):
            clf.assess(gaussian_batch(rng, c1))
        assessment = clf.assess(gaussian_batch(rng, c0))
        assert assessment.pattern is ShiftPattern.REOCCURRING
        assert assessment.historical_distance < assessment.distance

    def test_jump_to_genuinely_new_region_not_reoccurring(self, rng, centers):
        c0, c1, c2 = centers
        clf = make_classifier(warmup_points=2)
        for _ in range(12):
            clf.assess(gaussian_batch(rng, c0))
        for _ in range(8):
            clf.assess(gaussian_batch(rng, c1))
        assessment = clf.assess(gaussian_batch(rng, c2))  # never seen
        assert assessment.pattern is ShiftPattern.SUDDEN

    def test_reoccurrence_ratio_tightens_rule(self, rng, centers):
        c0, c1, _ = centers

        def classify(ratio):
            clf = make_classifier(warmup_points=2, reoccurrence_ratio=ratio)
            rng_local = np.random.default_rng(1)
            for _ in range(12):
                clf.assess(gaussian_batch(rng_local, c0))
            for _ in range(8):
                clf.assess(gaussian_batch(rng_local, c1))
            return clf.assess(gaussian_batch(rng_local, c0)).pattern

        assert classify(0.5) is ShiftPattern.REOCCURRING
        # An absurdly tight ratio rejects even a perfect return.
        assert classify(1e-9) is ShiftPattern.SUDDEN


class TestStateManagement:
    def test_history_index_points_at_matching_batch(self, rng, centers):
        c0, c1, _ = centers
        clf = make_classifier(warmup_points=2)
        for _ in range(6):
            clf.assess(gaussian_batch(rng, c0))
        for _ in range(6):
            clf.assess(gaussian_batch(rng, c1))
        assessment = clf.assess(gaussian_batch(rng, c0))
        # Nearest historical embedding should be one of the c0 batches.
        assert assessment.historical_index < 6

    def test_classifier_never_reads_labels(self, rng):
        """assess() takes features only — the API enforces label-freeness."""
        clf = make_classifier(warmup_points=2)
        assessment = clf.assess(rng.normal(size=(32, 4)))
        assert assessment is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            PatternClassifier(alpha=0.0)
        with pytest.raises(ValueError):
            PatternClassifier(reoccurrence_ratio=0.0)
        with pytest.raises(ValueError):
            PatternClassifier(reoccurrence_ratio=1.5)

    def test_pattern_enum_values_match_stream_annotations(self):
        from repro.data import Pattern
        assert ShiftPattern.SLIGHT.value == Pattern.SLIGHT
        assert ShiftPattern.SUDDEN.value == Pattern.SUDDEN
        assert ShiftPattern.REOCCURRING.value == Pattern.REOCCURRING
