"""Tests for the experiment runner and reporting (repro.eval)."""

import numpy as np
import pytest

from repro.data import HyperplaneGenerator, SEAGenerator
from repro.eval import (
    RunConfig,
    format_table,
    model_factory_for,
    render_accuracy_table,
    render_series,
    run_framework,
    run_matrix,
)
from repro.models import StreamingCNN, StreamingLR, StreamingMLP


class TestRunConfig:
    def test_default_lr_per_model(self):
        assert RunConfig(model="lr").learning_rate() == 0.5
        assert RunConfig(model="mlp").learning_rate() == 0.3
        assert RunConfig(model="lr", lr=0.01).learning_rate() == 0.01


class TestModelFactory:
    def test_lr(self):
        model = model_factory_for("lr", 5, 3, 0.1)()
        assert isinstance(model, StreamingLR)
        assert model.num_features == 5

    def test_mlp(self):
        assert isinstance(model_factory_for("mlp", 5, 3, 0.1)(),
                          StreamingMLP)

    def test_cnn_tabular(self):
        model = model_factory_for("cnn", 5, 3, 0.1)()
        assert isinstance(model, StreamingCNN)
        assert not model.is_image_model

    def test_cnn_image(self):
        model = model_factory_for("cnn", 256, 3, 0.1,
                                  input_shape=(1, 16, 16))()
        assert model.is_image_model

    def test_unknown(self):
        with pytest.raises(ValueError):
            model_factory_for("bogus", 5, 3, 0.1)


class TestRunFramework:
    CONFIG = RunConfig(num_batches=8, batch_size=64, model="lr", seed=0)

    def test_plain(self):
        result = run_framework("plain", HyperplaneGenerator(seed=0),
                               self.CONFIG)
        assert result.name == "plain"
        assert len(result.accuracies) == 8

    def test_freewayml(self):
        result = run_framework("freewayml", HyperplaneGenerator(seed=0),
                               self.CONFIG)
        assert result.name == "freewayml"

    def test_baseline_by_name(self):
        result = run_framework("flink-ml", HyperplaneGenerator(seed=0),
                               self.CONFIG)
        assert result.name == "flink-ml"

    def test_identical_streams_across_frameworks(self):
        """Same generator seed => byte-identical batches per framework."""
        a = run_framework("plain", HyperplaneGenerator(seed=5), self.CONFIG)
        b = run_framework("flink-ml", HyperplaneGenerator(seed=5),
                          self.CONFIG)
        # flink-ml with no delay IS plain SGD: identical accuracy series
        # proves identical streams and identical initial weights.
        np.testing.assert_allclose(a.accuracies, b.accuracies)


class TestRunMatrix:
    def test_shape_of_results(self):
        config = RunConfig(num_batches=5, batch_size=32, model="lr")
        datasets = {"hyperplane": HyperplaneGenerator(seed=0),
                    "sea": SEAGenerator(seed=0)}
        results = run_matrix(["plain", "freewayml"], datasets, config)
        assert set(results) == {"hyperplane", "sea"}
        assert set(results["sea"]) == {"plain", "freewayml"}


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_validates_row_width(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["1", "2"]])

    def test_render_accuracy_table_stars_best(self):
        config = RunConfig(num_batches=5, batch_size=32, model="lr")
        datasets = {"hyperplane": HyperplaneGenerator(seed=0)}
        results = run_matrix(["plain", "flink-ml"], datasets, config)
        text = render_accuracy_table(results)
        assert "*" in text
        assert "plain" in text and "flink-ml" in text

    def test_render_series(self):
        text = render_series("acc", [0.1, 0.5, 0.9, 0.5, 0.1])
        assert "acc" in text
        assert "[0.10..0.90]" in text

    def test_render_series_empty(self):
        assert "(empty)" in render_series("x", [])
