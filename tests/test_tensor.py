"""Tests for the reverse-mode autograd engine (repro.nn.tensor)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor, no_grad, ones, tensor, zeros

from conftest import numeric_gradient


def small_arrays(min_dims=1, max_dims=2):
    return hnp.arrays(
        dtype=np.float64,
        shape=hnp.array_shapes(min_dims=min_dims, max_dims=max_dims,
                               min_side=1, max_side=5),
        elements=st.floats(-5.0, 5.0, allow_nan=False),
    )


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64

    def test_int_data_promoted_to_float(self):
        t = Tensor([1, 2, 3])
        assert t.dtype.kind == "f"

    def test_requires_grad_flag(self):
        assert Tensor([1.0], requires_grad=True).requires_grad
        assert not Tensor([1.0]).requires_grad

    def test_factory_helpers(self):
        assert zeros(2, 3).shape == (2, 3)
        assert ones((4,)).data.sum() == 4.0
        assert tensor([1.0]).shape == (1,)

    def test_detach_shares_data(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_copy_is_deep(self):
        t = Tensor([1.0, 2.0])
        c = t.copy()
        c.data[0] = 99.0
        assert t.data[0] == 1.0

    def test_item_requires_scalar(self):
        assert Tensor([3.5]).item() == 3.5
        with pytest.raises(Exception):
            Tensor([1.0, 2.0]).item()

    def test_len_and_repr(self):
        t = Tensor([[1.0], [2.0]], requires_grad=True)
        assert len(t) == 2
        assert "requires_grad" in repr(t)


class TestArithmeticGradients:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_sub_backward(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a - b).sum().backward()
        assert a.grad[0] == 1.0
        assert b.grad[0] == -1.0

    def test_mul_backward(self):
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([5.0], requires_grad=True)
        (a * b).sum().backward()
        assert a.grad[0] == 5.0
        assert b.grad[0] == 2.0

    def test_div_backward(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        (a / b).sum().backward()
        assert a.grad[0] == pytest.approx(1.0 / 3.0)
        assert b.grad[0] == pytest.approx(-6.0 / 9.0)

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 2).sum().backward()
        assert a.grad[0] == pytest.approx(6.0)

    def test_neg_backward(self):
        a = Tensor([1.5], requires_grad=True)
        (-a).sum().backward()
        assert a.grad[0] == -1.0

    def test_radd_rsub_rmul_rdiv_with_scalars(self):
        a = Tensor([2.0], requires_grad=True)
        out = (1.0 + a) + (3.0 - a) + (2.0 * a) + (4.0 / a)
        out.sum().backward()
        # d/da [1+a + 3-a + 2a + 4/a] = 0 + 2 - 4/a^2 = 2 - 1 = 1
        assert a.grad[0] == pytest.approx(1.0)

    def test_scalar_exponent_only(self):
        a = Tensor([2.0], requires_grad=True)
        with pytest.raises(TypeError):
            a ** Tensor([2.0])

    def test_gradient_accumulates_across_uses(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0 + a * 3.0).sum().backward()
        assert a.grad[0] == pytest.approx(5.0)

    def test_diamond_graph_gradient(self):
        a = Tensor([2.0], requires_grad=True)
        b = a * 3.0
        c = b + b  # b used twice
        c.sum().backward()
        assert a.grad[0] == pytest.approx(6.0)


class TestBroadcasting:
    def test_broadcast_add_reduces_grad(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_broadcast_keepdim_axis(self):
        a = Tensor(np.ones((3, 1)), requires_grad=True)
        b = Tensor(np.ones((3, 5)), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((3, 1), 5.0))

    def test_scalar_broadcast(self):
        a = Tensor(5.0, requires_grad=True)
        b = Tensor(np.ones((2, 2)), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad == pytest.approx(4.0)

    @given(small_arrays())
    @settings(max_examples=25, deadline=None)
    def test_mul_gradcheck_property(self, data):
        a = Tensor(data.copy(), requires_grad=True)
        b_data = data.copy() + 1.5
        (a * Tensor(b_data)).sum().backward()
        np.testing.assert_allclose(a.grad, b_data, rtol=1e-9)


class TestMatmul:
    def test_matrix_matrix(self, rng):
        a_data = rng.normal(size=(3, 4))
        b_data = rng.normal(size=(4, 2))
        a = Tensor(a_data.copy(), requires_grad=True)
        out = (a @ Tensor(b_data)).sum()
        out.backward()
        numeric = numeric_gradient(
            lambda: (a_data @ b_data).sum(), a_data
        )
        np.testing.assert_allclose(a.grad, numeric, atol=1e-6)

    def test_vector_vector_dot(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a @ b).backward()
        np.testing.assert_allclose(a.grad, [3.0, 4.0])
        np.testing.assert_allclose(b.grad, [1.0, 2.0])

    def test_vector_matrix(self, rng):
        v = Tensor(rng.normal(size=3), requires_grad=True)
        m = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        (v @ m).sum().backward()
        assert v.grad.shape == (3,)
        assert m.grad.shape == (3, 2)

    def test_matrix_vector(self, rng):
        m = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        v = Tensor(rng.normal(size=3), requires_grad=True)
        (m @ v).sum().backward()
        assert m.grad.shape == (2, 3)
        assert v.grad.shape == (3,)

    def test_rmatmul(self, rng):
        a = rng.normal(size=(2, 3))
        b = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        out = a @ b
        assert isinstance(out, Tensor)
        out.sum().backward()
        assert b.grad.shape == (3, 2)


class TestReductionsAndShapes:
    def test_sum_axis_backward(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        a.sum(axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_sum_keepdims(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_mean_backward(self):
        a = Tensor(np.ones((4,)), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full(4, 0.25))

    def test_mean_axis_tuple(self):
        a = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        out = a.mean(axis=(1, 2))
        assert out.shape == (2,)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3, 4), 1.0 / 12))

    def test_max_backward_routes_to_argmax(self):
        a = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_max_ties_split_gradient(self):
        a = Tensor([2.0, 2.0], requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5])

    def test_max_axis(self):
        a = Tensor([[1.0, 9.0], [7.0, 2.0]], requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_reshape_roundtrip_gradient(self):
        a = Tensor(np.arange(6.0), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(6))

    def test_transpose_gradient(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = a.T
        assert out.shape == (3, 2)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_transpose_axes(self):
        a = Tensor(np.zeros((2, 3, 4)), requires_grad=True)
        out = a.transpose(1, 0, 2)
        assert out.shape == (3, 2, 4)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)

    def test_getitem_gradient_scatter(self):
        a = Tensor(np.arange(5.0), requires_grad=True)
        a[1:3].sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 1.0, 0.0, 0.0])

    def test_flatten_batch(self):
        a = Tensor(np.zeros((4, 2, 3)), requires_grad=True)
        assert a.flatten_batch().shape == (4, 6)


class TestElementwise:
    @pytest.mark.parametrize("name", ["exp", "log", "sqrt", "tanh",
                                      "sigmoid", "relu", "abs"])
    def test_gradcheck(self, name, rng):
        data = np.abs(rng.normal(size=8)) + 0.5  # positive, safe for log/sqrt
        if name in ("tanh", "sigmoid", "relu", "abs"):
            data = rng.normal(size=8) + 0.01  # avoid kink exactly at 0
        t = Tensor(data.copy(), requires_grad=True)
        getattr(t, name)().sum().backward()
        numeric = numeric_gradient(
            lambda: getattr(Tensor(data), name)().sum().item(), data
        )
        np.testing.assert_allclose(t.grad, numeric, atol=1e-5)

    def test_relu_zeroes_negatives(self):
        t = Tensor([-1.0, 2.0])
        np.testing.assert_allclose(t.relu().data, [0.0, 2.0])

    def test_clip_gradient_masks_outside(self):
        t = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_sigmoid_extreme_values_stable(self):
        t = Tensor([-1000.0, 1000.0])
        out = t.sigmoid().data
        assert np.isfinite(out).all()
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)


class TestBackwardSemantics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_grad_arg(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2.0).backward()

    def test_backward_with_explicit_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        (t * 2.0).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(t.grad, [2.0, 20.0])

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2.0).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_no_grad_blocks_graph(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = t * 2.0
        assert not out.requires_grad

    def test_no_grad_restores_on_exception(self):
        from repro.nn.tensor import is_grad_enabled
        try:
            with no_grad():
                raise ValueError("boom")
        except ValueError:
            pass
        assert is_grad_enabled()

    def test_second_backward_accumulates(self):
        t = Tensor([1.0], requires_grad=True)
        out = t * 3.0
        out.sum().backward()
        out2 = t * 4.0
        out2.sum().backward()
        assert t.grad[0] == pytest.approx(7.0)

    def test_deep_chain_gradient(self):
        t = Tensor([1.0], requires_grad=True)
        out = t
        for _ in range(50):
            out = out * 1.01
        out.sum().backward()
        assert t.grad[0] == pytest.approx(1.01 ** 50, rel=1e-9)

    def test_comparisons_return_numpy_bool(self):
        a = Tensor([1.0, 3.0])
        assert (a > 2.0).tolist() == [False, True]
        assert (a <= 1.0).tolist() == [True, False]
        assert (a == 3.0).tolist() == [False, True]
