"""Tests for checkpoint serialization (repro.nn.serialization)."""

import numpy as np
import pytest

from repro import nn
from repro.nn.serialization import (
    load_state_dict,
    save_state_dict,
    state_dict_from_bytes,
    state_dict_nbytes,
    state_dict_to_bytes,
)


@pytest.fixture
def model():
    return nn.Linear(6, 3, rng=np.random.default_rng(0))


class TestBytesRoundTrip:
    def test_round_trip_preserves_arrays(self, model):
        state = model.state_dict()
        restored = state_dict_from_bytes(state_dict_to_bytes(state))
        assert set(restored) == set(state)
        for name in state:
            np.testing.assert_array_equal(restored[name], state[name])

    def test_restored_state_loads_into_model(self, model):
        blob = state_dict_to_bytes(model.state_dict())
        other = nn.Linear(6, 3, rng=np.random.default_rng(99))
        other.load_state_dict(state_dict_from_bytes(blob))
        np.testing.assert_array_equal(other.weight.data, model.weight.data)

    def test_empty_state(self):
        assert state_dict_from_bytes(state_dict_to_bytes({})) == {}


class TestSizeAccounting:
    def test_nbytes_counts_raw_payload(self, model):
        state = model.state_dict()
        expected = (6 * 3 + 3) * 8  # float64
        assert state_dict_nbytes(state) == expected

    def test_nbytes_scales_with_model(self):
        small = nn.Linear(4, 2).state_dict()
        large = nn.Linear(40, 20).state_dict()
        assert state_dict_nbytes(large) > state_dict_nbytes(small) * 50

    def test_mlp_larger_than_lr(self):
        """Table IV shape: MLP checkpoints ~7x LR checkpoints."""
        from repro.models import StreamingLR, StreamingMLP
        lr_state = StreamingLR(num_features=10, num_classes=2).state_dict()
        mlp_state = StreamingMLP(num_features=10, num_classes=2).state_dict()
        assert state_dict_nbytes(mlp_state) > 3 * state_dict_nbytes(lr_state)


class TestFileRoundTrip:
    def test_save_and_load(self, model, tmp_path):
        path = tmp_path / "ckpt" / "model.npz"
        written = save_state_dict(model.state_dict(), path)
        assert path.exists()
        assert written == path.stat().st_size
        restored = load_state_dict(path)
        np.testing.assert_array_equal(restored["weight"], model.weight.data)

    def test_creates_parent_directories(self, model, tmp_path):
        path = tmp_path / "a" / "b" / "c.npz"
        save_state_dict(model.state_dict(), path)
        assert path.exists()
