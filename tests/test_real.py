"""Tests for the real-dataset simulators (repro.data.real)."""

import numpy as np
import pytest

from repro.data import (
    DATASET_REGISTRY,
    AirlinesSimulator,
    CovertypeSimulator,
    ElectricitySimulator,
    NSLKDDSimulator,
    Pattern,
    make_dataset,
)

ALL_SIMULATORS = [
    ElectricitySimulator,
    NSLKDDSimulator,
    CovertypeSimulator,
    AirlinesSimulator,
]


@pytest.mark.parametrize("simulator_cls", ALL_SIMULATORS)
class TestCommonBehaviour:
    def test_shapes(self, simulator_cls):
        sim = simulator_cls(seed=0)
        batches = sim.stream(6, batch_size=32).materialize()
        assert len(batches) == 6
        assert batches[0].x.shape == (32, sim.num_features)
        assert batches[0].y.max() < sim.num_classes

    def test_deterministic(self, simulator_cls):
        a = simulator_cls(seed=5).stream(4, 16).materialize()
        b = simulator_cls(seed=5).stream(4, 16).materialize()
        for ba, bb in zip(a, b):
            np.testing.assert_array_equal(ba.x, bb.x)
            np.testing.assert_array_equal(ba.y, bb.y)

    def test_long_stream_covers_all_patterns(self, simulator_cls):
        batches = simulator_cls(seed=0).stream(120, 16).materialize()
        patterns = {b.pattern for b in batches}
        assert Pattern.SLIGHT in patterns
        assert Pattern.SUDDEN in patterns
        assert Pattern.REOCCURRING in patterns

    def test_stream_respects_requested_length(self, simulator_cls):
        # Length not a multiple of the blueprint must still be exact.
        batches = simulator_cls(seed=0).stream(37, 8).materialize()
        assert len(batches) == 37

    def test_indices_sequential(self, simulator_cls):
        batches = simulator_cls(seed=0).stream(10, 8).materialize()
        assert [b.index for b in batches] == list(range(10))


class TestBlueprintSemantics:
    def test_tiled_repeats_convert_sudden_to_reoccurring(self):
        # Run long enough for the blueprint to repeat; the second entry of
        # the "volatile"/"storm"-style concept must be reoccurring.  Severe
        # entries annotate a short disruption region (entry_span batches).
        batches = ElectricitySimulator(seed=0).stream(120, 8).materialize()
        severe = [(b.index, b.pattern) for b in batches
                  if b.pattern in (Pattern.SUDDEN, Pattern.REOCCURRING)]
        sudden_count = sum(1 for _, p in severe if p == Pattern.SUDDEN)
        reoccurring_count = len(severe) - sudden_count
        assert 1 <= sudden_count <= 3  # only the first volatile entry is new
        assert reoccurring_count > sudden_count

    def test_nslkdd_class_imbalance(self):
        batches = NSLKDDSimulator(seed=0).stream(10, 512).materialize()
        labels = np.concatenate([b.y for b in batches])
        counts = np.bincount(labels, minlength=5)
        assert counts.argmax() == 0            # "normal" dominates
        assert counts[4] < counts[0] * 0.2     # U2R is rare

    def test_covertype_mostly_directional_slight(self):
        batches = CovertypeSimulator(seed=0).stream(60, 8).materialize()
        slight = sum(1 for b in batches if b.pattern == Pattern.SLIGHT)
        assert slight / len(batches) > 0.85

    def test_sudden_shift_moves_distribution(self):
        batches = AirlinesSimulator(seed=0).stream(40, 256).materialize()
        sudden_index = next(b.index for b in batches
                            if b.pattern == Pattern.SUDDEN)
        before = batches[sudden_index - 1].x.mean(axis=0)
        after = batches[sudden_index].x.mean(axis=0)
        slight_gap = np.linalg.norm(
            batches[sudden_index - 1].x.mean(axis=0)
            - batches[sudden_index - 2].x.mean(axis=0)
        )
        assert np.linalg.norm(after - before) > 4 * slight_gap


class TestRegistry:
    def test_all_registered(self):
        assert set(DATASET_REGISTRY) == {
            "electricity", "nsl-kdd", "covertype", "airlines"
        }

    def test_make_dataset(self):
        sim = make_dataset("electricity", seed=9)
        assert isinstance(sim, ElectricitySimulator)
        assert sim.seed == 9

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            make_dataset("nope")
