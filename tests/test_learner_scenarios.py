"""Adversarial and unusual stream scenarios for the Learner."""

import numpy as np
import pytest

from repro.core import Learner, Strategy
from repro.data import Batch
from repro.models import StreamingLR, StreamingMLP


def lr_factory():
    return StreamingLR(num_features=5, num_classes=3, lr=0.3, seed=0)


def make_batch(rng, index, n=64, d=5, label=None, center=0.0):
    x = rng.normal(size=(n, d)) + center
    if label is None:
        y = rng.integers(0, 3, size=n)
    else:
        y = np.full(n, label, dtype=np.int64)
    return Batch(x, y, index=index)


class TestDegenerateStreams:
    def test_single_class_stream(self, rng):
        """A stream where only one label ever occurs must not crash CEC,
        knowledge preservation, or the ensemble."""
        learner = Learner(lr_factory, window_batches=4)
        reports = [learner.process(make_batch(rng, i, label=1))
                   for i in range(20)]
        assert np.mean([r.accuracy for r in reports[3:]]) > 0.95

    def test_tiny_batches(self, rng):
        learner = Learner(lr_factory, window_batches=4,
                          experience_per_batch=4, cec_points=8)
        reports = [learner.process(make_batch(rng, i, n=5))
                   for i in range(15)]
        assert len(reports) == 15

    def test_batch_of_two_rows(self, rng):
        learner = Learner(lr_factory, window_batches=4)
        report = learner.process(make_batch(rng, 0, n=2))
        assert report.accuracy is not None

    def test_high_dimensional_stream(self, rng):
        def wide_factory():
            return StreamingLR(num_features=500, num_classes=3, lr=0.3,
                               seed=0)

        learner = Learner(wide_factory, window_batches=4)
        for index in range(6):
            x = rng.normal(size=(32, 500))
            learner.process(Batch(x, rng.integers(0, 3, 32), index=index))
        assert learner.classifier.pca.is_fitted

    def test_constant_features(self, rng):
        """Zero-variance features make the PCA covariance singular-ish;
        the pipeline must stay finite."""
        learner = Learner(lr_factory, window_batches=4)
        for index in range(10):
            x = np.ones((32, 5)) * 3.0
            x[:, 0] = rng.normal(size=32)  # one informative feature
            report = learner.process(
                Batch(x, (x[:, 0] > 0).astype(int), index=index)
            )
            assert report.accuracy is not None

    def test_label_space_subset_in_every_batch(self, rng):
        """Each batch shows only 2 of 3 classes — bincount/one-hot paths
        must handle missing classes."""
        learner = Learner(lr_factory, window_batches=4)
        for index in range(15):
            missing = index % 3
            y = rng.integers(0, 3, size=64)
            y[y == missing] = (missing + 1) % 3
            x = rng.normal(size=(64, 5)) + y[:, None]
            learner.process(Batch(x, y, index=index))
        assert learner.ensemble.trained


class TestRobustnessGuards:
    def test_size_one_batches_do_not_poison_window(self, rng):
        """A size-1 first batch leaves the PCA unfitted, so early window
        embeddings live in raw-feature space; once the PCA fits, the ASW
        must not crash on the representation change."""
        learner = Learner(lr_factory, window_batches=4)
        learner.update(rng.normal(size=(1, 5)), np.array([0]))
        for index in range(8):
            learner.process(make_batch(rng, index))
        assert learner.ensemble.trained

    def test_stale_reuse_match_discarded_on_next_predict(self, rng):
        """A reuse match found for batch t must not warm-start from batch
        t+k's labels when updates were skipped in between."""
        learner = Learner(lr_factory, window_batches=4)
        for index in range(25):
            learner.process(make_batch(rng, index))
        # Force a pending match, then run an unrelated predict.
        learner._pending_reuse = object()
        learner.predict(make_batch(rng, 99).x)
        assert learner._pending_reuse is None


class TestMixedLabeledUnlabeled:
    def test_alternating_inference_and_training(self, rng):
        learner = Learner(lr_factory, window_batches=4)
        losses = []
        for index in range(16):
            batch = make_batch(rng, index)
            if index % 2 == 1:
                batch = batch.without_labels()
            report = learner.process(batch)
            losses.append(report.loss)
        # Unlabeled batches produce predictions but no training.
        assert all(loss is None for loss in losses[1::2])
        assert all(loss is not None for loss in losses[0::2])

    def test_inference_only_stream_never_trains(self, rng):
        learner = Learner(lr_factory, window_batches=4)
        for index in range(8):
            report = learner.process(make_batch(rng, index).without_labels())
            assert report.loss is None
        assert not learner.ensemble.trained
        assert len(learner.experience) == 0


class TestKnowledgeSpillIntegration:
    def test_spill_directory_populated_under_pressure(self, rng, tmp_path):
        learner = Learner(lr_factory, window_batches=2,
                          knowledge_capacity=3, spill_dir=tmp_path / "kdg")
        # Alternate far-apart concepts so windows complete and disorder
        # varies, generating many knowledge entries.
        for index in range(40):
            center = 10.0 * (index // 5 % 3)
            learner.process(make_batch(rng, index, center=center))
        assert len(learner.knowledge) <= 3
        if learner.knowledge.spilled_total:
            assert list((tmp_path / "kdg").glob("*.npz"))


class TestNumModelsLadder:
    def test_three_granularity_levels_run(self, rng):
        learner = Learner(lr_factory, num_models=3, window_batches=2)
        for index in range(40):
            learner.process(make_batch(rng, index))
        levels = learner.ensemble.levels
        assert [level.window_batches for level in levels] == [1, 2, 8]
        assert levels[1].updates >= 10
        assert levels[2].updates >= 2

    def test_single_model_degenerates_gracefully(self, rng):
        learner = Learner(lr_factory, num_models=1)
        reports = [learner.process(make_batch(rng, i)) for i in range(10)]
        assert all(r.strategy == Strategy.MULTI_GRANULARITY.value
                   or r.strategy in (Strategy.CEC.value,
                                     Strategy.KNOWLEDGE_REUSE.value)
                   for r in reports)


class TestImageLearnerWithoutFeaturizer:
    def test_cec_on_raw_pixels_runs(self):
        from repro.data import AnimalsStream
        from repro.models import StreamingCNN

        def factory():
            return StreamingCNN(input_shape=(1, 16, 16), num_classes=4,
                                lr=0.1, seed=0, image_channels=8)

        learner = Learner(factory, window_batches=4)  # no featurizer
        reports = [learner.process(batch) for batch
                   in AnimalsStream(seed=0).stream(12, 32)]
        assert len(reports) == 12
