"""Tests for the sweep utility (repro.eval.sweeps)."""

import pytest

from repro.data import ElectricitySimulator
from repro.eval import sweep_learner
from repro.models import StreamingLR


def factory():
    return StreamingLR(num_features=8, num_classes=2, lr=0.5, seed=0)


class TestSweepLearner:
    def test_full_factorial_order(self):
        cells = sweep_learner(
            factory, ElectricitySimulator(seed=0),
            grid={"alpha": [1.0, 2.0], "window_batches": [4, 8]},
            num_batches=6, batch_size=64,
        )
        assert len(cells) == 4
        assert cells[0].params == {"alpha": 1.0, "window_batches": 4}
        assert cells[-1].params == {"alpha": 2.0, "window_batches": 8}

    def test_cells_expose_metrics(self):
        cells = sweep_learner(
            factory, ElectricitySimulator(seed=0),
            grid={"alpha": [1.96]}, num_batches=6, batch_size=64,
        )
        cell = cells[0]
        assert 0.0 <= cell.g_acc <= 1.0
        assert 0.0 < cell.si <= 1.0

    def test_identical_streams_per_cell(self):
        """Same config twice => identical results (streams re-seeded)."""
        cells = sweep_learner(
            factory, ElectricitySimulator(seed=0),
            grid={"alpha": [1.96, 1.96]}, num_batches=6, batch_size=64,
        )
        assert cells[0].g_acc == cells[1].g_acc

    def test_base_kwargs_applied(self):
        cells = sweep_learner(
            factory, ElectricitySimulator(seed=0),
            grid={"alpha": [1.96]}, num_batches=6, batch_size=64,
            base_kwargs={"num_models": 1},
        )
        assert cells  # constructs without error with the fixed kwarg

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            sweep_learner(factory, ElectricitySimulator(seed=0), grid={})
