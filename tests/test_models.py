"""Tests for streaming models and k-means (repro.models)."""

import numpy as np
import pytest

from repro.models import (
    KMeans,
    StreamingCNN,
    StreamingLR,
    StreamingMLP,
)


class TestStreamingLR:
    def test_learns_linearly_separable_data(self, blob_data):
        x, y = blob_data
        model = StreamingLR(num_features=4, num_classes=2, lr=0.5, seed=0)
        for _ in range(30):
            model.partial_fit(x, y)
        assert (model.predict(x) == y).mean() > 0.95

    def test_predict_proba_shape_and_simplex(self, rng):
        model = StreamingLR(num_features=3, num_classes=4, seed=0)
        proba = model.predict_proba(rng.normal(size=(10, 3)))
        assert proba.shape == (10, 4)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_loss_decreases(self, blob_data):
        x, y = blob_data
        model = StreamingLR(num_features=4, num_classes=2, lr=0.5, seed=0)
        first = model.partial_fit(x, y)
        for _ in range(20):
            last = model.partial_fit(x, y)
        assert last < first

    def test_updates_counter(self, blob_data):
        x, y = blob_data
        model = StreamingLR(num_features=4, num_classes=2, seed=0)
        model.partial_fit(x, y)
        model.partial_fit(x, y)
        assert model.updates == 2

    def test_label_mismatch_raises(self, rng):
        model = StreamingLR(num_features=3, num_classes=2, seed=0)
        with pytest.raises(ValueError):
            model.partial_fit(rng.normal(size=(5, 3)), np.zeros(4))

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingLR(num_features=0, num_classes=2)
        with pytest.raises(ValueError):
            StreamingLR(num_features=3, num_classes=1)
        with pytest.raises(ValueError):
            StreamingLR(num_features=3, num_classes=2, sgd_steps=0)


class TestCloneAndState:
    @pytest.mark.parametrize("factory", [
        lambda: StreamingLR(num_features=4, num_classes=2, seed=3),
        lambda: StreamingMLP(num_features=4, num_classes=2, seed=3),
        lambda: StreamingCNN(input_shape=(6,), num_classes=2, seed=3),
    ])
    def test_clone_matches_initial_weights(self, factory):
        model = factory()
        clone = model.clone()
        for (na, a), (nb, b) in zip(model.state_dict().items(),
                                    clone.state_dict().items()):
            assert na == nb
            np.testing.assert_array_equal(a, b)

    def test_clone_is_fresh_not_trained(self, blob_data):
        x, y = blob_data
        model = StreamingMLP(num_features=4, num_classes=2, seed=0)
        initial = model.state_dict()
        model.partial_fit(x, y)
        clone = model.clone()
        for name, value in clone.state_dict().items():
            np.testing.assert_array_equal(value, initial[name])

    def test_state_dict_round_trip_preserves_predictions(self, rng,
                                                         blob_data):
        x, y = blob_data
        model = StreamingMLP(num_features=4, num_classes=2, seed=0)
        model.partial_fit(x, y)
        state = model.state_dict()
        other = StreamingMLP(num_features=4, num_classes=2, seed=42)
        other.load_state_dict(state)
        np.testing.assert_allclose(other.predict_proba(x),
                                   model.predict_proba(x))

    def test_num_parameters(self):
        model = StreamingLR(num_features=10, num_classes=3)
        assert model.num_parameters() == 10 * 3 + 3


class TestGradientInterface:
    def test_gradient_on_matches_partial_fit_direction(self, blob_data):
        x, y = blob_data
        a = StreamingLR(num_features=4, num_classes=2, lr=0.1, seed=0)
        b = StreamingLR(num_features=4, num_classes=2, lr=0.1, seed=0)
        grads = a.gradient_on(x, y)
        a.apply_gradient(grads)
        b.partial_fit(x, y)
        for pa, pb in zip(a.module.parameters(), b.module.parameters()):
            np.testing.assert_allclose(pa.data, pb.data, atol=1e-12)

    def test_gradient_on_does_not_update(self, blob_data):
        x, y = blob_data
        model = StreamingLR(num_features=4, num_classes=2, seed=0)
        before = model.state_dict()
        model.gradient_on(x, y)
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(value, before[name])

    def test_apply_gradient_wrong_length_raises(self, blob_data):
        x, y = blob_data
        model = StreamingLR(num_features=4, num_classes=2, seed=0)
        with pytest.raises(ValueError):
            model.apply_gradient([np.zeros((2, 4))])

    def test_loss_on_does_not_update(self, blob_data):
        x, y = blob_data
        model = StreamingLR(num_features=4, num_classes=2, seed=0)
        before = model.state_dict()
        loss = model.loss_on(x, y)
        assert loss > 0
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(value, before[name])


class TestStreamingMLP:
    def test_learns_nonlinear_boundary(self, rng):
        x = rng.normal(size=(400, 2))
        y = ((x[:, 0] * x[:, 1]) > 0).astype(np.int64)  # XOR-ish
        model = StreamingMLP(num_features=2, num_classes=2,
                             hidden=(32,), lr=0.3, seed=1)
        for _ in range(150):
            model.partial_fit(x, y)
        assert (model.predict(x) == y).mean() > 0.85

    def test_hidden_layers_configurable(self):
        model = StreamingMLP(num_features=4, num_classes=2,
                             hidden=(16, 8), seed=0)
        names = list(model.state_dict())
        assert len([n for n in names if n.endswith("weight")]) == 3

    def test_invalid_hidden(self):
        with pytest.raises(ValueError):
            StreamingMLP(num_features=4, num_classes=2, hidden=())
        with pytest.raises(ValueError):
            StreamingMLP(num_features=4, num_classes=2, hidden=(0,))


class TestStreamingCNN:
    def test_tabular_architecture(self):
        model = StreamingCNN(input_shape=(10,), num_classes=3, seed=0)
        assert not model.is_image_model
        proba = model.predict_proba(np.zeros((4, 10)))
        assert proba.shape == (4, 3)

    def test_image_architecture(self):
        model = StreamingCNN(input_shape=(1, 16, 16), num_classes=4, seed=0)
        assert model.is_image_model
        proba = model.predict_proba(np.zeros((2, 1, 16, 16)))
        assert proba.shape == (2, 4)

    def test_tabular_cnn_learns(self, blob_data):
        x, y = blob_data
        model = StreamingCNN(input_shape=(4,), num_classes=2, lr=0.2, seed=0)
        for _ in range(30):
            model.partial_fit(x, y)
        assert (model.predict(x) == y).mean() > 0.9

    def test_image_cnn_learns_synthetic_classes(self, rng):
        from repro.data import ImageConcept
        concept = ImageConcept(2, rng, size=8, noise=0.1)
        x, y = concept.sample(rng, 128)
        model = StreamingCNN(input_shape=(1, 8, 8), num_classes=2,
                             lr=0.1, seed=0, image_channels=8)
        for _ in range(25):
            model.partial_fit(x, y)
        assert (model.predict(x) == y).mean() > 0.9

    def test_flat_input_reshaped_for_images(self, rng):
        model = StreamingCNN(input_shape=(1, 8, 8), num_classes=2, seed=0)
        flat = rng.normal(size=(3, 64))
        assert model.predict_proba(flat).shape == (3, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingCNN(input_shape=(2, 3), num_classes=2)
        with pytest.raises(ValueError):
            StreamingCNN(input_shape=(2,), num_classes=2)
        with pytest.raises(ValueError):
            StreamingCNN(input_shape=(1, 2, 2), num_classes=2)


class TestKMeans:
    def test_recovers_separated_clusters(self, rng):
        centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        x = np.concatenate([
            rng.normal(size=(60, 2)) * 0.4 + center for center in centers
        ])
        kmeans = KMeans(3, seed=0)
        labels = kmeans.fit_predict(x)
        # Each true cluster maps to exactly one predicted cluster.
        for start in range(0, 180, 60):
            block = labels[start:start + 60]
            assert (block == np.bincount(block).argmax()).mean() > 0.98

    def test_centroids_near_truth(self, rng):
        x = np.concatenate([
            rng.normal(size=(100, 3)) * 0.2 - 5,
            rng.normal(size=(100, 3)) * 0.2 + 5,
        ])
        kmeans = KMeans(2, seed=0).fit(x)
        sorted_centroids = kmeans.centroids[
            np.argsort(kmeans.centroids[:, 0])
        ]
        np.testing.assert_allclose(sorted_centroids[0], -5, atol=0.3)
        np.testing.assert_allclose(sorted_centroids[1], 5, atol=0.3)

    def test_deterministic_given_seed(self, rng):
        x = rng.normal(size=(100, 4))
        a = KMeans(3, seed=5).fit_predict(x)
        b = KMeans(3, seed=5).fit_predict(x)
        np.testing.assert_array_equal(a, b)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KMeans(2).predict(np.zeros((3, 2)))

    def test_too_few_points_raises(self, rng):
        with pytest.raises(ValueError):
            KMeans(5).fit(rng.normal(size=(3, 2)))

    def test_inertia_lower_for_better_fit(self, rng):
        x = np.concatenate([
            rng.normal(size=(50, 2)) * 0.2 - 3,
            rng.normal(size=(50, 2)) * 0.2 + 3,
        ])
        good = KMeans(2, seed=0).fit(x)
        bad = KMeans(2, seed=0, max_iter=0)
        bad.centroids = np.zeros((2, 2))
        bad.centroids[1] = 0.1
        assert good.inertia(x) < bad.inertia(x)

    def test_duplicate_points_handled(self):
        x = np.ones((10, 2))
        labels = KMeans(2, seed=0).fit_predict(x)
        assert len(labels) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            KMeans(0)
        with pytest.raises(ValueError):
            KMeans(2).fit(np.zeros(5))
