"""Tests for the live telemetry plane (repro.obs.live).

Covers the registry wire format (dump/delta/merge), Prometheus text
exposition correctness, the bounded MemorySink ring, the SLO/alert
engine, the TelemetryServer endpoints, cross-backend telemetry equality
(the process backend's merged metrics/events must match a serial run),
and the chaos case: a worker crash mid-run still yields a consistent
merged snapshot.
"""

import json
import urllib.request
from collections import Counter

import numpy as np
import pytest

from repro.core import Learner
from repro.data import ElectricitySimulator
from repro.distributed import DistributedLearner, ProcessBackend
from repro.models import StreamingMLP
from repro.obs import (
    AlertRaised,
    AlertResolved,
    CompositeSink,
    DegradedMode,
    Event,
    MemorySink,
    MetricsRegistry,
    Observability,
    ShiftAssessed,
    SloEngine,
    SloRule,
    TelemetryServer,
    WorkerRestarted,
    absorb_telemetry,
    build_snapshot,
    default_slo_rules,
    drain_telemetry,
    parse_prometheus_text,
    summarize_trace,
)
from repro.resilience import DirtyData, WorkerCrash

needs_fork = pytest.mark.skipif(
    not ProcessBackend.available(),
    reason="platform lacks the fork start method",
)


def mlp_factory():
    return StreamingMLP(num_features=8, num_classes=2, lr=0.3, seed=0)


def stream(n, batch_size=96, seed=1):
    return ElectricitySimulator(seed=seed).stream(n, batch_size).materialize()


def counter_series(registry, name):
    """``{sorted-label-tuple: value}`` for one counter family."""
    family = registry.snapshot().get(name)
    if family is None:
        return {}
    return {tuple(sorted(s["labels"].items())): s["value"]
            for s in family["series"]}


# -- registry wire format ------------------------------------------------------


class TestRegistryMerge:
    def test_counters_add(self):
        source = MetricsRegistry()
        source.counter("hits").inc(3)
        source.counter("hits").labels(kind="a").inc(2)
        target = MetricsRegistry()
        target.counter("hits").inc(10)
        target.merge(source.dump())
        assert target.counter("hits").value == 13.0
        assert target.counter("hits").labels(kind="a").value == 2.0

    def test_counters_add_under_worker_label(self):
        target = MetricsRegistry()
        for worker in range(2):
            source = MetricsRegistry()
            source.counter("hits").inc(worker + 1)
            target.merge(source.dump(), extra_labels={"worker": str(worker)})
        series = {tuple(sorted(s["labels"].items())): s["value"]
                  for s in target.snapshot()["hits"]["series"]}
        assert series == {(("worker", "0"),): 1.0, (("worker", "1"),): 2.0}

    def test_gauges_last_write_wins(self):
        source = MetricsRegistry()
        source.gauge("depth").set(7.0)
        target = MetricsRegistry()
        target.merge(source.dump(), extra_labels={"worker": "0"})
        source.gauge("depth").set(3.0)
        target.merge(source.dump(), extra_labels={"worker": "0"})
        assert target.gauge("depth").labels(worker="0").value == 3.0

    def test_histograms_merge_bucket_wise_bit_exactly(self):
        values = [0.0001, 0.004, 0.03, 0.4, 7.5, 100.0]
        source = MetricsRegistry()
        reference = MetricsRegistry()
        for value in values:
            source.histogram("lat").observe(value)
            reference.histogram("lat").observe(value)
        target = MetricsRegistry()
        target.merge(source.dump())
        merged, expected = target.histogram("lat"), reference.histogram("lat")
        assert merged._counts == expected._counts
        assert merged.sum == expected.sum  # bit-exact, not approx
        assert merged.count == expected.count
        assert merged._min == expected._min
        assert merged._max == expected._max

    def test_histogram_boundary_mismatch_rejected(self):
        source = MetricsRegistry()
        source.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        target = MetricsRegistry()
        target.histogram("lat", buckets=(5.0, 6.0)).observe(5.5)
        with pytest.raises(ValueError, match="boundaries"):
            target.merge(source.dump())

    def test_unknown_kind_rejected(self):
        target = MetricsRegistry()
        with pytest.raises(ValueError, match="unknown kind"):
            target.merge({"x": {"kind": "mystery", "series": []}})


class TestCollectDelta:
    def test_first_delta_is_full_dump(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(5)
        assert registry.collect_delta()["hits"]["series"][0]["value"] == 5.0

    def test_consecutive_deltas_reproduce_totals(self):
        source = MetricsRegistry()
        target = MetricsRegistry()
        for round_values in ([0.001, 0.2], [5.0], [0.03, 0.03, 9.0]):
            source.counter("hits").inc(len(round_values))
            for value in round_values:
                source.histogram("lat").observe(value)
            target.merge(source.collect_delta())
        assert target.counter("hits").value == source.counter("hits").value
        assert target.histogram("lat")._counts == source.histogram("lat")._counts
        assert target.histogram("lat").sum == source.histogram("lat").sum

    def test_unchanged_series_omitted(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.collect_delta()
        assert registry.collect_delta() == {}
        registry.counter("hits").inc()
        delta = registry.collect_delta()
        assert delta["hits"]["series"][0]["value"] == 1.0  # the increment

    def test_gauge_delta_ships_absolute_value(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(4.0)
        registry.collect_delta()
        registry.gauge("depth").set(9.0)
        assert registry.collect_delta()["depth"]["series"][0]["value"] == 9.0


class TestDrainAbsorb:
    def test_round_trip_with_worker_label(self):
        source = Observability.in_memory()
        source.registry.counter("hits").inc(4)
        source.emit(DegradedMode(batch=1, mechanism="cec", fallback="short"))
        delta, records = drain_telemetry(source)
        target = Observability.in_memory()
        absorb_telemetry(target, delta, records, worker=3)
        assert counter_series(target.registry, "hits") == {
            (("worker", "3"),): 4.0
        }
        (event,) = target.sink.events
        assert isinstance(event, DegradedMode) and event.mechanism == "cec"

    def test_drain_is_idempotent(self):
        source = Observability.in_memory()
        source.registry.counter("hits").inc()
        source.emit(ShiftAssessed(batch=0, pattern="slight"))
        drain_telemetry(source)
        assert drain_telemetry(source) == ({}, [])

    def test_disabled_facades_are_inert(self):
        from repro.obs import NULL_OBS
        assert drain_telemetry(NULL_OBS) == ({}, [])
        absorb_telemetry(NULL_OBS, {"x": {"kind": "counter", "series": []}},
                         [], worker=0)  # must not touch the registry
        assert NULL_OBS.registry.snapshot() == {}


# -- Prometheus text exposition ------------------------------------------------


class TestPrometheusExposition:
    def test_label_values_escaped_and_round_trip(self):
        registry = MetricsRegistry()
        nasty = 'a\\b"c\nd'
        registry.counter("hits", "help").labels(path=nasty).inc(2)
        text = registry.render_text()
        assert '\\\\' in text and '\\"' in text and '\\n' in text
        assert "\n\n" not in text  # the raw newline never leaks into a line
        families = parse_prometheus_text(text)
        ((_, labels, value),) = families["hits"]["samples"]
        assert labels == {"path": nasty}  # exact round trip
        assert value == 2.0

    def test_help_and_type_once_per_family(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits", "how many")
        counter.labels(kind="a").inc()
        counter.labels(kind="b").inc()
        registry.histogram("lat", "latency").observe(0.01)
        lines = registry.render_text().splitlines()
        for name in ("hits", "lat"):
            assert sum(1 for l in lines
                       if l.startswith(f"# TYPE {name} ")) == 1
            assert sum(1 for l in lines
                       if l.startswith(f"# HELP {name} ")) == 1
        # HELP/TYPE precede every sample of their family.
        assert lines.index("# TYPE hits counter") < lines.index(
            next(l for l in lines if l.startswith("hits{")))

    def test_histogram_renders_valid_exposition(self):
        registry = MetricsRegistry()
        for value in (0.001, 0.02, 3.0):
            registry.histogram("lat", "latency").labels(stage="x").observe(value)
        families = parse_prometheus_text(registry.render_text())
        samples = families["lat"]["samples"]
        names = {name for name, _, _ in samples}
        assert names == {"lat_bucket", "lat_sum", "lat_count"}
        count = next(v for n, _, v in samples if n == "lat_count")
        assert count == 3.0

    def test_parser_rejects_type_after_samples(self):
        with pytest.raises(ValueError, match="after its"):
            parse_prometheus_text("# TYPE x counter\nx 1\n# HELP x oops\n")

    def test_parser_rejects_sample_without_type(self):
        with pytest.raises(ValueError, match="no # TYPE"):
            parse_prometheus_text("mystery 1\n")

    def test_parser_rejects_duplicate_type(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_prometheus_text("# TYPE x counter\n# TYPE x counter\nx 1\n")

    def test_parser_rejects_decreasing_buckets(self):
        text = ("# TYPE lat histogram\n"
                'lat_bucket{le="1"} 5\nlat_bucket{le="2"} 3\n'
                "lat_sum 1\nlat_count 5\n")
        with pytest.raises(ValueError, match="decreased"):
            parse_prometheus_text(text)

    def test_parser_rejects_bad_escape(self):
        with pytest.raises(ValueError, match="bad escape"):
            parse_prometheus_text('# TYPE x counter\nx{a="\\q"} 1\n')


# -- bounded MemorySink --------------------------------------------------------


class TestMemorySinkRing:
    def test_capacity_caps_and_counts_drops(self):
        sink = MemorySink(capacity=3)
        for index in range(5):
            sink.emit(ShiftAssessed(batch=index, pattern="slight"))
        assert len(sink.records) == 3
        assert sink.dropped == 2
        assert [event.batch for event in sink.events] == [2, 3, 4]

    def test_drain_empties_but_keeps_drop_count(self):
        sink = MemorySink(capacity=2)
        for index in range(3):
            sink.emit(ShiftAssessed(batch=index, pattern="slight"))
        drained = sink.drain()
        assert len(drained) == 2 and sink.records == []
        assert sink.dropped == 1

    def test_unbounded_opt_out(self):
        sink = MemorySink(capacity=None)
        for index in range(10):
            sink.emit(index)
        assert len(sink.records) == 10 and sink.dropped == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MemorySink(capacity=0)


# -- SLO engine ----------------------------------------------------------------


class TestSloRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            SloRule("", signal="x", threshold=1.0)
        with pytest.raises(ValueError):
            SloRule("r", signal="x", threshold=1.0, aggregate="median")
        with pytest.raises(ValueError):
            SloRule("r", signal="x", threshold=1.0, comparison="!=")
        with pytest.raises(ValueError):
            SloRule("r", signal="x", threshold=1.0, window=0)

    def test_duplicate_rule_names_rejected(self):
        rules = [SloRule("same", signal="a", threshold=1.0),
                 SloRule("same", signal="b", threshold=1.0)]
        with pytest.raises(ValueError, match="duplicate"):
            SloEngine(rules)


class TestSloEngine:
    def test_rate_rule_raises_and_resolves(self):
        obs = Observability.in_memory()
        engine = SloEngine(
            [SloRule("deg", signal="degraded_mode", aggregate="rate",
                     threshold=0.5, window=4)], obs)
        obs.sink = CompositeSink(obs.sink, engine)
        for index in range(4):
            obs.emit(DegradedMode(batch=index, mechanism="cec",
                                  fallback="short"))
            engine.tick()
        assert "deg" in engine.active
        for _ in range(8):
            engine.tick()
        assert not engine.active
        assert engine.raised_total == 1 and engine.resolved_total == 1
        raised = [e for e in obs.sink.sinks[0].events
                  if isinstance(e, AlertRaised)]
        resolved = [e for e in obs.sink.sinks[0].events
                    if isinstance(e, AlertResolved)]
        assert len(raised) == 1 and raised[0].rule == "deg"
        assert len(resolved) == 1 and resolved[0].batches_active > 0
        assert counter_series(obs.registry, "freeway_alerts_total") == {
            (("rule", "deg"),): 1.0
        }

    def test_latency_p99_rule(self):
        engine = SloEngine(
            [SloRule("p99", signal="process_latency", aggregate="p99",
                     threshold=0.5, window=10, min_samples=3)])

        class FakeReport:
            def __init__(self, latency):
                self.latency_s = latency

        for _ in range(5):
            engine.observe_report(FakeReport(0.01))
        assert not engine.active
        for _ in range(10):
            engine.observe_report(FakeReport(2.0))
        assert "p99" in engine.active

    def test_min_samples_gates_value_aggregates(self):
        engine = SloEngine(
            [SloRule("p99", signal="process_latency", aggregate="p99",
                     threshold=0.5, window=10, min_samples=5)])
        engine.observe("process_latency", 100.0)
        engine.tick()
        assert not engine.active  # one huge sample is not evidence

    def test_starvation_rule_waits_for_full_window(self):
        engine = SloEngine(
            [SloRule("starved", signal="shift_assessed", aggregate="rate",
                     comparison="<", threshold=0.5, window=5)])
        engine.tick()
        assert not engine.active  # partial window: cannot judge under-rate
        for _ in range(6):
            engine.tick()
        assert "starved" in engine.active

    def test_default_rules_are_valid_and_unique(self):
        engine = SloEngine(default_slo_rules())
        names = [rule.name for rule in engine.rules]
        assert len(names) == len(set(names)) >= 4

    def test_pre_emptive_degrade_flips_learner(self):
        learner = Learner(mlp_factory, window_batches=4, seed=0)
        assert learner.degrade is False and learner.breaker is None
        engine = SloEngine(
            [SloRule("deg", signal="degraded_mode", aggregate="rate",
                     threshold=0.5, window=4)],
            pre_emptive_degrade=True)
        engine.bind(learner)
        for index in range(4):
            engine.observe("degraded_mode", 1.0)
            engine.tick()
        assert learner.degrade is True
        assert learner.breaker is not None  # built lazily by set_degrade
        for _ in range(8):
            engine.tick()
        assert learner.degrade is False  # restored on resolution

    def test_engine_ignores_its_own_alert_events(self):
        obs = Observability.in_memory()
        engine = SloEngine(
            [SloRule("any", signal="alert_raised", aggregate="count",
                     threshold=0.0, window=5)], obs)
        obs.sink = CompositeSink(obs.sink, engine)
        obs.emit(AlertRaised(rule="x", signal="s", value=1.0, threshold=0.5))
        engine.tick()
        assert not engine.active  # no feedback loop on its own output


# -- telemetry server ----------------------------------------------------------


class TestTelemetryServer:
    def scrape(self, server, path):
        with urllib.request.urlopen(f"{server.url}{path}", timeout=10) as r:
            return r.read().decode()

    def test_endpoints_respond_during_live_run(self):
        obs = Observability.in_memory()
        engine = SloEngine(default_slo_rules(), obs)
        obs.sink = CompositeSink(obs.sink, engine)
        learner = Learner(mlp_factory, window_batches=4, seed=0, obs=obs)
        with TelemetryServer(obs, engine,
                             health_source=learner.summary) as server:
            for batch in stream(6):
                report = learner.process(batch)
                engine.observe_report(report)
                text = self.scrape(server, "/metrics")
            families = parse_prometheus_text(text)
            assert "freeway_batches_total" in families
            health = json.loads(self.scrape(server, "/health"))
            assert health["status"] == "ok"
            assert health["summary"]["batches_processed"] == 6
            assert health["slo"]["tick"] == 6
            snapshot = json.loads(self.scrape(server, "/snapshot"))
            assert snapshot["kind"] == "snapshot"
            assert snapshot["metrics"]["freeway_batches_total"]["series"]
            assert any(record["kind"] == "event"
                       for record in snapshot["records"])

    def test_unknown_path_404(self):
        obs = Observability.in_memory()
        with TelemetryServer(obs) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self.scrape(server, "/nope")
            assert excinfo.value.code == 404

    def test_health_reports_alerting(self):
        obs = Observability.in_memory()
        engine = SloEngine(
            [SloRule("deg", signal="degraded_mode", aggregate="rate",
                     threshold=0.25, window=4)], obs)
        obs.sink = CompositeSink(obs.sink, engine)
        for index in range(4):
            obs.emit(DegradedMode(batch=index, mechanism="cec",
                                  fallback="short"))
            engine.tick()
        with TelemetryServer(obs, engine) as server:
            health = json.loads(self.scrape(server, "/health"))
        assert health["status"] == "alerting"
        assert health["alerts"][0]["rule"] == "deg"

    def test_ephemeral_port_and_clean_stop(self):
        obs = Observability.in_memory()
        server = TelemetryServer(obs).start()
        port = server.port
        assert port and port > 0
        server.stop()
        assert server.port is None
        with pytest.raises(OSError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=1)


# -- fault-injected live alert (acceptance scenario) ---------------------------


class TestLiveAlertUnderFaults:
    def test_dirty_data_raises_then_resolves_degraded_rate(self):
        obs = Observability.in_memory()
        engine = SloEngine(
            [SloRule("degraded-rate", signal="degraded_mode",
                     aggregate="rate", threshold=0.5, window=4)], obs)
        obs.sink = CompositeSink(obs.sink, engine)
        learner = Learner(mlp_factory, window_batches=4, seed=0,
                          degrade=True, obs=obs)
        injector = DirtyData(at=set(range(2, 8)), cells=12, seed=3)
        batches = stream(16, batch_size=64)
        statuses = []
        with TelemetryServer(obs, engine,
                             health_source=learner.summary) as server:
            for index, batch in enumerate(batches):
                report = learner.process(injector(batch))
                engine.observe_report(report)
                with urllib.request.urlopen(f"{server.url}/health",
                                            timeout=10) as response:
                    statuses.append(json.loads(response.read())["status"])
        assert "alerting" in statuses          # the dirty stretch raised
        assert statuses[-1] == "ok"            # and the recovery resolved
        assert engine.raised_total >= 1 and engine.resolved_total >= 1
        ring = obs.sink.sinks[0]
        assert any(isinstance(e, AlertRaised) for e in ring.events)
        assert any(isinstance(e, AlertResolved) for e in ring.events)


# -- cross-backend telemetry equality ------------------------------------------


def run_with_obs(backend, batches, num_workers=2, sync_every=1):
    obs = Observability.in_memory()
    learner = DistributedLearner(mlp_factory, num_workers=num_workers,
                                 sync_every=sync_every, window_batches=4,
                                 backend=backend, seed=0, obs=obs)
    try:
        accuracies = [learner.process(batch).accuracy for batch in batches]
    finally:
        learner.close()
    return obs, accuracies


#: Deterministic replica-emitted counters (latency histograms excluded:
#: their sums are wall-clock).  Worker restarts are coordinator-side.
DETERMINISTIC_COUNTERS = ("freeway_batches_total", "freeway_items_total",
                          "freeway_fallbacks_total")


def total_by_family(obs, name):
    return sum(counter_series(obs.registry, name).values())


def event_multiset(obs):
    return Counter(
        (event.TYPE, getattr(event, "batch", None))
        for event in obs.sink.events
        if isinstance(event, Event) and not isinstance(event, WorkerRestarted)
    )


class TestThreadBackendTelemetryEquality:
    def test_counters_and_events_match_serial(self):
        batches = stream(8)
        serial, serial_acc = run_with_obs("serial", batches)
        thread, thread_acc = run_with_obs("thread", batches)
        assert serial_acc == thread_acc
        for name in DETERMINISTIC_COUNTERS:
            assert total_by_family(serial, name) == total_by_family(
                thread, name), name
        assert event_multiset(serial) == event_multiset(thread)

    def test_thread_series_carry_worker_labels(self):
        thread, _ = run_with_obs("thread", stream(4))
        labels = counter_series(thread.registry, "freeway_items_total")
        assert {dict(k)["worker"] for k in labels} == {"0", "1"}


@needs_fork
class TestProcessBackendTelemetryEquality:
    def test_counters_and_events_match_serial(self):
        batches = stream(8)
        serial, serial_acc = run_with_obs("serial", batches)
        process, process_acc = run_with_obs(
            ProcessBackend(max_restarts=0), batches)
        assert serial_acc == process_acc
        for name in DETERMINISTIC_COUNTERS:
            assert total_by_family(serial, name) == total_by_family(
                process, name), name
        assert event_multiset(serial) == event_multiset(process)

    def test_hot_path_observation_counts_match_serial(self):
        # Histogram *sums* are wall clock (nondeterministic); observation
        # counts per stage are structural and must agree.
        def stage_counts(obs):
            family = obs.registry.snapshot().get("freeway_predict_seconds")
            if family is None:
                return {}
            counts: Counter = Counter()
            for series in family["series"]:
                labels = dict(series["labels"])
                labels.pop("worker", None)
                counts[tuple(sorted(labels.items()))] += series["count"]
            return counts

        batches = stream(6)
        serial, _ = run_with_obs("serial", batches)
        process, _ = run_with_obs(ProcessBackend(max_restarts=0), batches)
        assert stage_counts(serial) == stage_counts(process)

    def test_worker_crash_still_yields_consistent_snapshot(self):
        batches = stream(10)
        serial, serial_acc = run_with_obs("serial", batches)
        backend = ProcessBackend(max_restarts=2)
        WorkerCrash(at={3}, worker=1).attach(backend)
        chaos, chaos_acc = run_with_obs(backend, batches)
        # Recovery guarantee (PR 4): accuracy sequence matches fault-free.
        assert chaos_acc == serial_acc
        # The merged snapshot stays consistent: batch/item totals match
        # the serial run exactly — no double count from the restarted
        # worker's re-shipped telemetry, no loss from the crash.
        for name in ("freeway_batches_total", "freeway_items_total"):
            assert total_by_family(serial, name) == total_by_family(
                chaos, name), name
        restarts = counter_series(chaos.registry,
                                  "freeway_worker_restarts_total")
        assert sum(restarts.values()) == 1.0
        assert any(isinstance(e, WorkerRestarted)
                   for e in chaos.sink.events)
        # Prometheus exposition of the merged registry stays well formed.
        parse_prometheus_text(chaos.registry.render_text())

    def test_concurrent_health_scrapes_do_not_corrupt_the_pipes(self):
        # Regression: /health used to RPC knowledge_len over the worker
        # pipes from the scrape thread, interleaving its replies with
        # the run loop's telemetry collection (FIFO pipes → unpack
        # crash).  summary() must stay pipe-free under a live plane.
        import threading

        obs = Observability.in_memory()
        learner = DistributedLearner(mlp_factory, num_workers=2,
                                     window_batches=4, seed=0,
                                     backend=ProcessBackend(max_restarts=0),
                                     obs=obs)
        stop = threading.Event()
        statuses: list = []

        def hammer(url):
            while not stop.is_set():
                with urllib.request.urlopen(f"{url}/health",
                                            timeout=10) as response:
                    statuses.append(json.loads(response.read())["status"])

        try:
            with TelemetryServer(obs,
                                 health_source=learner.summary) as server:
                scraper = threading.Thread(target=hammer,
                                           args=(server.url,), daemon=True)
                scraper.start()
                try:
                    accuracies = [learner.process(batch).accuracy
                                  for batch in stream(12)]
                finally:
                    stop.set()
                    scraper.join(timeout=10)
        finally:
            learner.close()
        assert len(accuracies) == 12       # the run survived the scrapes
        assert statuses and all(s == "ok" for s in statuses)
        summary = learner.summary()        # post-run summary still sane
        assert summary["batches_processed"] == 12
        assert summary["knowledge_entries"] >= 0


# -- report from snapshot ------------------------------------------------------


class TestReportFromSnapshot:
    def test_snapshot_feeds_the_trace_renderer(self, tmp_path):
        obs = Observability.in_memory()
        obs.emit(ShiftAssessed(batch=0, pattern="slight"))
        obs.emit(ShiftAssessed(batch=1, pattern="severe"))
        obs.emit(DegradedMode(batch=1, mechanism="cec", fallback="short"))
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(build_snapshot(obs), default=float))
        summary = summarize_trace(path)
        assert summary.num_events == 3
        assert summary.pattern_counts == {"severe": 1, "slight": 1}

    def test_snapshot_carries_ring_drop_count(self):
        obs = Observability(sink=MemorySink(capacity=2))
        for index in range(4):
            obs.emit(ShiftAssessed(batch=index, pattern="slight"))
        snapshot = build_snapshot(obs)
        assert snapshot["dropped_records"] == 2
        assert len(snapshot["records"]) == 2

    def test_jsonl_traces_still_summarize(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs = Observability.to_jsonl(path)
        obs.emit(ShiftAssessed(batch=0, pattern="slight"))
        obs.close()
        assert summarize_trace(path).num_events == 1
