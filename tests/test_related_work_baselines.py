"""Tests for the related-work comparators: EWC and expert selection."""

import numpy as np
import pytest

from repro.baselines import EWCBaseline, ExpertsBaseline
from repro.models import StreamingLR, StreamingMLP


def mlp_factory():
    return StreamingMLP(num_features=4, num_classes=2, lr=0.3, seed=0)


class TestEWC:
    def test_learns_separable_data(self, blob_data):
        x, y = blob_data
        baseline = EWCBaseline(mlp_factory)
        for _ in range(30):
            baseline.partial_fit(x, y)
        assert (baseline.predict(x) == y).mean() > 0.9

    def test_consolidation_schedule(self, blob_data):
        x, y = blob_data
        baseline = EWCBaseline(mlp_factory, consolidate_every=5)
        for _ in range(11):
            baseline.partial_fit(x, y)
        assert baseline.consolidations == 2

    def test_anchor_resists_forgetting(self, rng):
        """With a strong anchor, learning a conflicting concept degrades
        performance on the old one less than unconstrained SGD."""
        x_old = rng.normal(size=(256, 4))
        y_old = (x_old[:, 0] > 0).astype(np.int64)
        x_new = rng.normal(size=(256, 4))
        y_new = (x_new[:, 0] <= 0).astype(np.int64)  # flipped concept

        def retention(ewc_lambda):
            baseline = EWCBaseline(mlp_factory, ewc_lambda=ewc_lambda,
                                   consolidate_every=5)
            for _ in range(20):
                baseline.partial_fit(x_old, y_old)
            for _ in range(3):
                baseline.partial_fit(x_new, y_new)
            return (baseline.predict(x_old) == y_old).mean()

        assert retention(ewc_lambda=1.0) > retention(ewc_lambda=0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EWCBaseline(mlp_factory, ewc_lambda=-1.0)
        with pytest.raises(ValueError):
            EWCBaseline(mlp_factory, consolidate_every=0)

    def test_proba_simplex(self, rng, blob_data):
        x, y = blob_data
        baseline = EWCBaseline(mlp_factory)
        baseline.partial_fit(x, y)
        proba = baseline.predict_proba(rng.normal(size=(10, 4)))
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)


class TestExperts:
    def _regime_batch(self, rng, center, flip=False, n=128):
        x = rng.normal(size=(n, 4)) + center
        y = (x[:, 0] > center).astype(np.int64)
        if flip:
            y = 1 - y
        return x, y

    def test_single_expert_initially(self):
        baseline = ExpertsBaseline(mlp_factory)
        assert baseline.num_experts == 1

    def test_spawns_expert_for_new_regime(self, rng):
        baseline = ExpertsBaseline(mlp_factory, spawn_distance=2.0)
        for _ in range(10):
            baseline.partial_fit(*self._regime_batch(rng, 0.0))
        assert baseline.num_experts == 1
        baseline.partial_fit(*self._regime_batch(rng, 30.0))
        assert baseline.num_experts == 2
        assert baseline.spawns == 1

    def test_routes_back_to_matching_expert(self, rng):
        """The SEED-style promise: a reoccurring regime is served by the
        expert that learned it."""
        baseline = ExpertsBaseline(mlp_factory, spawn_distance=2.0)
        # Regime A (center 0, normal labels), regime B (center 30, flipped).
        for _ in range(15):
            baseline.partial_fit(*self._regime_batch(rng, 0.0))
        for _ in range(15):
            baseline.partial_fit(*self._regime_batch(rng, 30.0, flip=True))
        # Regime A returns: the A-expert answers well immediately.
        x, y = self._regime_batch(rng, 0.0)
        assert (baseline.predict(x) == y).mean() > 0.85

    def test_pool_capped_and_recycled(self, rng):
        baseline = ExpertsBaseline(mlp_factory, max_experts=2,
                                   spawn_distance=2.0)
        for center in (0.0, 30.0, -30.0, 60.0):
            for _ in range(5):
                baseline.partial_fit(*self._regime_batch(rng, center))
        assert baseline.num_experts <= 2

    def test_state_dict_unsupported(self):
        baseline = ExpertsBaseline(mlp_factory)
        with pytest.raises(NotImplementedError):
            baseline.state_dict()
        with pytest.raises(NotImplementedError):
            baseline.load_state_dict({})

    def test_clone(self):
        baseline = ExpertsBaseline(mlp_factory, max_experts=7)
        assert baseline.clone().max_experts == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            ExpertsBaseline(mlp_factory, max_experts=0)
        with pytest.raises(ValueError):
            ExpertsBaseline(mlp_factory, spawn_distance=1.0)
        with pytest.raises(ValueError):
            ExpertsBaseline(mlp_factory, centroid_ema=0.0)


class TestRegistryIntegration:
    def test_registered(self):
        from repro.baselines import BASELINES, make_baseline
        assert "ewc" in BASELINES
        assert "experts" in BASELINES
        baseline = make_baseline("ewc", mlp_factory, ewc_lambda=5.0)
        assert isinstance(baseline, EWCBaseline)

    def test_not_in_table1_groups(self):
        from repro.baselines import LR_GROUP, MLP_GROUP
        assert "ewc" not in LR_GROUP + MLP_GROUP
        assert "experts" not in LR_GROUP + MLP_GROUP
