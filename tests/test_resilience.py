"""Chaos suite for the resilience layer (repro.resilience).

Covers the three legs end to end: deterministic fault injectors, worker
supervision in the process backend, and graceful degradation in the
learner — including the headline guarantee that a worker crash mid-stream
recovers with an accuracy sequence identical to the fault-free run.
"""

import numpy as np
import pytest

from repro.analysis import CheckpointIncompatibleError
from repro.core import Learner
from repro.data import ElectricitySimulator
from repro.distributed import DistributedLearner, ProcessBackend
from repro.models import StreamingLR, StreamingMLP
from repro.obs import (
    CheckpointRejected,
    CircuitOpened,
    DegradedMode,
    Observability,
    WorkerRestarted,
)
from repro.resilience import (
    CircuitBreaker,
    CorruptCheckpoint,
    DirtyData,
    SlowBatch,
    WorkerCrash,
)

needs_fork = pytest.mark.skipif(
    not ProcessBackend.available(),
    reason="platform lacks the fork start method",
)


def lr_factory():
    return StreamingLR(num_features=8, num_classes=2, lr=0.3, seed=0)


def mlp_factory():
    return StreamingMLP(num_features=8, num_classes=2, lr=0.3, seed=0)


def stream(n, batch_size=96, seed=1):
    return ElectricitySimulator(seed=seed).stream(n, batch_size).materialize()


def distributed_accuracies(backend, batches, num_workers=3, obs=None):
    learner = DistributedLearner(mlp_factory, num_workers=num_workers,
                                 backend=backend, seed=0, window_batches=4,
                                 obs=obs)
    try:
        return [learner.process(batch).accuracy for batch in batches]
    finally:
        learner.close()


# -- injector determinism ------------------------------------------------------


class TestInjectorDeterminism:
    def test_explicit_schedule_fires_exactly(self):
        injector = WorkerCrash(at={2, 5})
        fired = [injector.should_fire(i) for i in range(8)]
        assert fired == [False, False, True, False, False, True, False,
                         False]
        assert injector.fired == [2, 5]

    def test_rate_schedule_replays_under_same_seed(self):
        first = DirtyData(rate=0.3, seed=11)
        second = DirtyData(rate=0.3, seed=11)
        a = [first.should_fire() for _ in range(50)]
        b = [second.should_fire() for _ in range(50)]
        assert a == b
        assert first.fired == second.fired
        assert any(a) and not all(a)

    def test_reset_rewinds_the_schedule(self):
        injector = SlowBatch(rate=0.5, delay=0.0, seed=5)
        a = [injector.should_fire() for _ in range(20)]
        injector.reset()
        b = [injector.should_fire() for _ in range(20)]
        assert a == b

    def test_dirty_data_corrupts_a_copy(self):
        injector = DirtyData(at={0}, cells=4, seed=0)
        batches = stream(1, batch_size=32)
        dirty = injector(batches[0])
        assert not np.isfinite(dirty.x).all()
        assert np.isfinite(batches[0].x).all()  # source untouched
        assert injector.corrupted_cells == 4

    def test_dirty_data_same_seed_same_cells(self):
        batches = stream(1, batch_size=32)
        a = DirtyData(at={0}, cells=6, seed=9)(batches[0])
        b = DirtyData(at={0}, cells=6, seed=9)(batches[0])
        np.testing.assert_array_equal(np.isnan(a.x), np.isnan(b.x))
        np.testing.assert_array_equal(np.isinf(a.x), np.isinf(b.x))

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            DirtyData(rate=1.5)
        with pytest.raises(ValueError):
            SlowBatch(delay=-1.0)
        with pytest.raises(ValueError):
            DirtyData(cells=0)


# -- worker supervision --------------------------------------------------------


@needs_fork
class TestWorkerSupervision:
    def test_crash_recovers_with_identical_accuracy_sequence(self):
        """The headline guarantee: a worker killed mid-stream is restarted
        from the last sync checkpoint and the run's accuracy sequence is
        identical to the fault-free run (sync_every=1)."""
        batches = stream(6)
        clean = distributed_accuracies("serial", batches)
        backend = ProcessBackend(max_restarts=3)
        WorkerCrash(at={3}, worker=1).attach(backend)
        faulty = distributed_accuracies(backend, batches)
        assert faulty == clean
        assert backend.restarts == [0, 1, 0]

    def test_restart_emits_event_and_counter(self):
        batches = stream(5)
        backend = ProcessBackend(max_restarts=2)
        WorkerCrash(at={2}, worker=0).attach(backend)
        obs = Observability.in_memory()
        distributed_accuracies(backend, batches, obs=obs)
        restarts = [e for e in obs.sink.events
                    if isinstance(e, WorkerRestarted)]
        assert len(restarts) == 1
        assert restarts[0].worker == 0
        assert restarts[0].reason == "crashed"
        assert restarts[0].reseeded
        assert restarts[0].resubmitted >= 1
        series = obs.registry.snapshot()["freeway_worker_restarts_total"][
            "series"]
        assert any(s["labels"] == {"reason": "crashed"} and s["value"] == 1
                   for s in series)

    def test_hung_worker_is_restarted(self):
        batches = stream(5)
        backend = ProcessBackend(max_restarts=2, hang_timeout=0.5)
        SlowBatch(at={2}, worker=0, delay=30.0).attach(backend)
        obs = Observability.in_memory()
        accuracies = distributed_accuracies(backend, batches, obs=obs)
        assert len(accuracies) == 5
        restarts = [e for e in obs.sink.events
                    if isinstance(e, WorkerRestarted)]
        assert restarts and restarts[0].reason == "hung"

    def test_max_restarts_exceeded_propagates(self):
        batches = stream(6)
        backend = ProcessBackend(max_restarts=1, restart_backoff=0.0)
        WorkerCrash(at={1, 2, 3}, worker=0).attach(backend)
        learner = DistributedLearner(mlp_factory, num_workers=2,
                                     backend=backend, seed=0,
                                     window_batches=4)
        try:
            with pytest.raises(RuntimeError, match="max_restarts"):
                for batch in batches:
                    learner.process(batch)
        finally:
            learner.close()

    def test_repeated_crashes_within_budget_recover(self):
        batches = stream(6)
        clean = distributed_accuracies("serial", batches)
        backend = ProcessBackend(max_restarts=3, restart_backoff=0.0)
        WorkerCrash(at={2, 4}, worker=2).attach(backend)
        faulty = distributed_accuracies(backend, batches)
        assert faulty == clean
        assert backend.restarts == [0, 0, 2]


# -- circuit breaker -----------------------------------------------------------


class TestCircuitBreaker:
    def test_opens_at_threshold(self):
        breaker = CircuitBreaker(threshold=3, cooldown=5)
        assert not breaker.record_failure("cec")
        assert not breaker.record_failure("cec")
        assert breaker.allow("cec")
        assert breaker.record_failure("cec")  # third failure opens
        assert not breaker.allow("cec")
        assert breaker.is_open("cec")

    def test_cooldown_allows_half_open_probe(self):
        breaker = CircuitBreaker(threshold=1, cooldown=3)
        breaker.record_failure("asw_train")
        assert not breaker.allow("asw_train")
        for _ in range(3):
            breaker.tick()
        assert breaker.allow("asw_train")  # half-open probe
        breaker.record_success("asw_train")
        assert breaker.allow("asw_train")
        assert breaker.snapshot()["asw_train"]["failures"] == 0

    def test_reopens_after_failed_probe(self):
        breaker = CircuitBreaker(threshold=1, cooldown=2)
        breaker.record_failure("cec")
        breaker.tick()
        breaker.tick()
        assert breaker.allow("cec")
        opened_again = breaker.record_failure("cec")
        assert not breaker.allow("cec")
        assert not opened_again  # already open: no duplicate event

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2, cooldown=5)
        breaker.record_failure("cec")
        breaker.record_success("cec")
        assert not breaker.record_failure("cec")
        assert breaker.allow("cec")

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0)


# -- graceful degradation ------------------------------------------------------


class TestGracefulDegradation:
    def test_dirty_stream_degrades_without_exceptions(self):
        obs = Observability.in_memory()
        learner = Learner(lr_factory, window_batches=4, degrade=True,
                          obs=obs)
        dirty = DirtyData(at={2, 4}, cells=16, seed=3)
        batches = ElectricitySimulator(seed=0).stream(8, 64).map(dirty)
        reports = [learner.process(batch) for batch in batches]
        assert len(reports) == 8
        degraded = [e for e in obs.sink.events if isinstance(e, DegradedMode)]
        assert [e.batch for e in degraded] == [2, 4]
        assert all(e.mechanism == "input" for e in degraded)

    def test_degrade_sanitizes_where_plain_learner_is_poisoned(self):
        dirty = DirtyData(at={1}, cells=8, seed=0)
        batches = [dirty(batch) for batch in stream(3, batch_size=64,
                                                    seed=0)]
        plain = Learner(lr_factory, window_batches=4)
        degrading = Learner(lr_factory, window_batches=4, degrade=True)
        for batch in batches:
            plain.process(batch)
            degrading.process(batch)
        # Without degradation the NaN cells flow straight into training
        # and poison the short model's weights; sanitization keeps them
        # finite.
        poisoned = plain.ensemble.short_level.model.state_dict()
        clean = degrading.ensemble.short_level.model.state_dict()
        assert not all(np.isfinite(v).all() for v in poisoned.values())
        assert all(np.isfinite(v).all() for v in clean.values())

    def test_mechanism_failure_falls_back_and_opens_circuit(self):
        obs = Observability.in_memory()
        learner = Learner(lr_factory, window_batches=4, degrade=True,
                          breaker_threshold=2, breaker_cooldown=50,
                          obs=obs)
        batches = stream(8, batch_size=64, seed=0)
        learner.process(batches[0])  # train once so the ensemble is live

        def boom(x, embedding):
            raise RuntimeError("ensemble exploded")

        learner.ensemble.predict_proba = boom
        reports = [learner.process(batch) for batch in batches[1:]]
        assert all(report.accuracy is not None for report in reports)
        degraded = [e for e in obs.sink.events
                    if isinstance(e, DegradedMode)
                    and e.mechanism == "multi_granularity"]
        assert len(degraded) == 2  # then the circuit opens
        opened = [e for e in obs.sink.events if isinstance(e, CircuitOpened)]
        assert len(opened) == 1
        assert opened[0].mechanism == "multi_granularity"
        assert learner.summary()["breaker"]["multi_granularity"]["open"]

    def test_circuit_cooldown_reprobes_and_recovers(self):
        learner = Learner(lr_factory, window_batches=4, degrade=True,
                          breaker_threshold=1, breaker_cooldown=2)
        batches = stream(8, batch_size=64, seed=0)
        learner.process(batches[0])
        original = learner.ensemble.predict_proba
        calls = []

        def boom(x, embedding):
            calls.append(len(calls))
            raise RuntimeError("transient")

        learner.ensemble.predict_proba = boom
        learner.process(batches[1])  # fails -> opens
        learner.process(batches[2])  # circuit open: mechanism not tried
        assert len(calls) == 1
        learner.ensemble.predict_proba = original
        learner.process(batches[3])  # cooldown elapsed: probe succeeds
        assert not learner.summary()["breaker"]["multi_granularity"]["open"]

    def test_asw_train_failure_skips_update(self):
        obs = Observability.in_memory()
        learner = Learner(lr_factory, window_batches=4, degrade=True,
                          obs=obs)
        batches = stream(4, batch_size=64, seed=0)
        learner.process(batches[0])

        def boom(x, y, embedding):
            raise RuntimeError("training exploded")

        learner.ensemble.update = boom
        report = learner.process(batches[1])
        assert report.loss is None  # update skipped, nothing propagated
        degraded = [e for e in obs.sink.events
                    if isinstance(e, DegradedMode)
                    and e.mechanism == "asw_train"]
        assert degraded and degraded[0].fallback == "skip_update"

    def test_corrupt_checkpoint_restore_is_rejected(self):
        obs = Observability.in_memory()
        learner = Learner(lr_factory, window_batches=2, degrade=True,
                          obs=obs)
        corrupt = CorruptCheckpoint(rate=1.0, seed=0)
        corrupt.attach(learner.knowledge)
        for batch in stream(12, batch_size=64, seed=1):
            learner.process(batch)
        assert corrupt.fired  # every preservation was mangled
        assert len(learner.knowledge) > 0
        entry = learner.knowledge.entries[0]
        scratch = lr_factory()
        with pytest.raises(CheckpointIncompatibleError):
            learner.knowledge.restore(entry, scratch)
        rejected = [e for e in obs.sink.events
                    if isinstance(e, CheckpointRejected)]
        assert rejected and rejected[0].source == "knowledge"

    def test_degrade_off_by_default_keeps_behavior(self):
        batches = stream(6, batch_size=64, seed=0)
        plain = Learner(lr_factory, window_batches=4)
        degrading = Learner(lr_factory, window_batches=4, degrade=True)
        a = [plain.process(batch).accuracy for batch in batches]
        b = [degrading.process(batch).accuracy for batch in batches]
        assert a == b  # clean stream: degradation changes nothing
