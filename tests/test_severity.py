"""Tests for shift-severity scoring (repro.shift.severity, Eqs. 8-10)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shift import SeverityTracker


class TestWeightedStatistics:
    def test_weighted_mean_favours_recent(self):
        tracker = SeverityTracker(window=10, decay=0.5)
        for value in [1.0, 1.0, 10.0]:  # most recent = 10
            tracker.observe(value)
        # Weights: 0.25, 0.5, 1.0 -> mean = (0.25 + 0.5 + 10) / 1.75
        assert tracker.weighted_mean() == pytest.approx(10.75 / 1.75)

    def test_decay_one_is_plain_mean(self):
        tracker = SeverityTracker(window=10, decay=1.0)
        for value in [2.0, 4.0, 6.0]:
            tracker.observe(value)
        assert tracker.weighted_mean() == pytest.approx(4.0)

    def test_std_matches_eq9(self):
        tracker = SeverityTracker(window=10, decay=1.0)
        values = [1.0, 2.0, 3.0, 4.0]
        for value in values:
            tracker.observe(value)
        mean = tracker.weighted_mean()
        expected = np.sqrt(np.mean((np.array(values) - mean) ** 2))
        assert tracker.std() == pytest.approx(expected)

    def test_window_bounds_history(self):
        tracker = SeverityTracker(window=3, decay=1.0)
        for value in [100.0, 1.0, 1.0, 1.0]:
            tracker.observe(value)
        assert tracker.weighted_mean() == pytest.approx(1.0)


class TestScore:
    def test_none_until_min_history(self):
        tracker = SeverityTracker(min_history=3)
        tracker.observe(1.0)
        tracker.observe(1.0)
        assert tracker.score(5.0) is None
        tracker.observe(1.0)
        assert tracker.score(5.0) is not None

    def test_outlier_scores_high(self):
        tracker = SeverityTracker(window=20, decay=1.0)
        rng = np.random.default_rng(0)
        for _ in range(20):
            tracker.observe(1.0 + rng.normal(scale=0.1))
        assert tracker.score(3.0) > 1.96
        assert tracker.score(1.0) < 1.96

    def test_typical_value_scores_low(self):
        tracker = SeverityTracker(window=10, decay=1.0)
        for value in [1.0, 1.2, 0.9, 1.1, 1.0]:
            tracker.observe(value)
        assert abs(tracker.score(1.05)) < 1.0

    def test_degenerate_history_finite_score(self):
        tracker = SeverityTracker()
        for _ in range(5):
            tracker.observe(2.0)
        score = tracker.score(3.0)
        assert np.isfinite(score)
        assert score > 1.96  # any strictly larger shift is extreme

    @given(st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=30, deadline=None)
    def test_scale_invariance(self, scale):
        """M is a z-score: rescaling all distances leaves it unchanged."""
        base = [1.0, 1.5, 0.8, 1.2, 1.1]
        t1 = SeverityTracker(decay=1.0)
        t2 = SeverityTracker(decay=1.0)
        for value in base:
            t1.observe(value)
            t2.observe(value * scale)
        assert t1.score(2.0) == pytest.approx(t2.score(2.0 * scale),
                                              rel=1e-6)

    def test_ready_property(self):
        tracker = SeverityTracker(min_history=2)
        assert not tracker.ready
        tracker.observe(1.0)
        tracker.observe(1.0)
        assert tracker.ready


class TestValidation:
    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            SeverityTracker().observe(-1.0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SeverityTracker(window=0)
        with pytest.raises(ValueError):
            SeverityTracker(decay=0.0)
        with pytest.raises(ValueError):
            SeverityTracker(decay=1.5)
        with pytest.raises(ValueError):
            SeverityTracker(min_history=1)

    def test_len(self):
        tracker = SeverityTracker()
        tracker.observe(1.0)
        assert len(tracker) == 1
