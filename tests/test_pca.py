"""Tests for warm-up PCA (repro.shift.pca, Eqs. 2-6)."""

import numpy as np
import pytest

from repro.shift import WarmupPCA


class TestFit:
    def test_components_match_numpy_eigendecomposition(self, rng):
        x = rng.normal(size=(500, 6)) @ rng.normal(size=(6, 6))
        pca = WarmupPCA(num_components=3).fit(x)
        centered = x - x.mean(axis=0)
        cov = centered.T @ centered / len(x)
        eigenvalues, eigenvectors = np.linalg.eigh(cov)
        order = np.argsort(eigenvalues)[::-1][:3]
        for column in range(3):
            ours = pca.components[:, column]
            reference = eigenvectors[:, order[column]]
            # Eigenvectors are sign-ambiguous.
            assert (np.allclose(ours, reference, atol=1e-8)
                    or np.allclose(ours, -reference, atol=1e-8))

    def test_explained_variance_descending(self, rng):
        x = rng.normal(size=(200, 5)) * np.array([5, 3, 1, 0.5, 0.1])
        pca = WarmupPCA(num_components=5).fit(x)
        variances = pca.explained_variance
        assert all(variances[i] >= variances[i + 1]
                   for i in range(len(variances) - 1))

    def test_dominant_direction_found(self, rng):
        # Variance almost entirely along axis 0.
        x = rng.normal(size=(300, 4)) * np.array([10.0, 0.1, 0.1, 0.1])
        pca = WarmupPCA(num_components=1).fit(x)
        direction = np.abs(pca.components[:, 0])
        assert direction[0] > 0.99

    def test_components_capped_at_input_dim(self, rng):
        pca = WarmupPCA(num_components=10).fit(rng.normal(size=(50, 3)))
        assert pca.components.shape == (3, 3)

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            WarmupPCA().fit(np.zeros((1, 3)))

    def test_validation(self):
        with pytest.raises(ValueError):
            WarmupPCA(num_components=0)
        with pytest.raises(ValueError):
            WarmupPCA(warmup_points=1)


class TestObserveWarmup:
    def test_accumulates_until_threshold(self, rng):
        pca = WarmupPCA(num_components=2, warmup_points=100)
        assert not pca.observe(rng.normal(size=(40, 3)))
        assert not pca.is_fitted
        assert pca.observe(rng.normal(size=(70, 3)))  # total 110 >= 100
        assert pca.is_fitted

    def test_observe_after_fit_is_noop(self, rng):
        pca = WarmupPCA(warmup_points=10)
        pca.observe(rng.normal(size=(20, 3)))
        components = pca.components.copy()
        pca.observe(rng.normal(size=(50, 3)) * 100)
        np.testing.assert_array_equal(pca.components, components)


class TestTransformAndEmbedding:
    def test_transform_centers_data(self, rng):
        x = rng.normal(loc=5.0, size=(200, 4))
        pca = WarmupPCA(num_components=4).fit(x)
        projected = pca.transform(x)
        np.testing.assert_allclose(projected.mean(axis=0), 0.0, atol=1e-10)

    def test_batch_embedding_is_projected_mean(self, rng):
        x = rng.normal(size=(200, 4))
        pca = WarmupPCA(num_components=2).fit(x)
        batch = rng.normal(loc=2.0, size=(50, 4))
        embedding = pca.batch_embedding(batch)
        manual = pca.components.T @ (batch.mean(axis=0) - pca.mean)
        np.testing.assert_allclose(embedding, manual)
        assert embedding.shape == (2,)

    def test_identical_batches_identical_embeddings(self, rng):
        x = rng.normal(size=(100, 3))
        pca = WarmupPCA(num_components=2).fit(x)
        batch = rng.normal(size=(20, 3))
        np.testing.assert_array_equal(pca.batch_embedding(batch),
                                      pca.batch_embedding(batch))

    def test_shifted_batch_moves_embedding(self, rng):
        x = rng.normal(size=(100, 3))
        pca = WarmupPCA(num_components=2).fit(x)
        batch = rng.normal(size=(50, 3))
        near = pca.batch_embedding(batch)
        far = pca.batch_embedding(batch + 10.0)
        assert np.linalg.norm(far - near) > 1.0

    def test_images_flattened(self, rng):
        x = rng.normal(size=(100, 2, 4, 4))
        pca = WarmupPCA(num_components=2).fit(x)
        assert pca.batch_embedding(rng.normal(size=(10, 2, 4, 4))).shape == (2,)

    def test_unfitted_raises(self):
        pca = WarmupPCA()
        with pytest.raises(RuntimeError):
            pca.transform(np.zeros((5, 3)))
        with pytest.raises(RuntimeError):
            pca.batch_embedding(np.zeros((5, 3)))
