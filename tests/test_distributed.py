"""Tests for the simulated distributed runtime (repro.distributed)."""

import numpy as np
import pytest

from repro.distributed import (
    DistributedLearner,
    average_state_dicts,
    contiguous_partition,
    hash_partition,
    round_robin_partition,
)
from repro.data import ElectricitySimulator, NSLKDDSimulator
from repro.models import StreamingMLP


def factory():
    return StreamingMLP(num_features=8, num_classes=2, lr=0.3, seed=0)


class TestPartitioners:
    @pytest.mark.parametrize("partition", [round_robin_partition,
                                           contiguous_partition])
    def test_covers_all_rows_exactly_once(self, partition):
        shards = partition(103, 4)
        combined = np.sort(np.concatenate(shards))
        np.testing.assert_array_equal(combined, np.arange(103))

    def test_round_robin_balance(self):
        shards = round_robin_partition(100, 3)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_contiguous_preserves_order(self):
        shards = contiguous_partition(10, 3)
        for shard in shards:
            assert (np.diff(shard) == 1).all()

    def test_hash_is_content_stable(self, rng):
        x = rng.normal(size=(50, 4))
        first = hash_partition(x, 4, seed=1)
        second = hash_partition(x, 4, seed=1)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_hash_covers_all_rows(self, rng):
        x = rng.normal(size=(64, 3))
        shards = hash_partition(x, 5, seed=0)
        combined = np.sort(np.concatenate(shards))
        np.testing.assert_array_equal(combined, np.arange(64))
        assert all(len(shard) > 0 for shard in shards)

    def test_validation(self):
        with pytest.raises(ValueError):
            round_robin_partition(2, 4)
        with pytest.raises(ValueError):
            contiguous_partition(10, 0)


class TestAverageStateDicts:
    def test_mean_of_parameters(self):
        a = {"w": np.array([1.0, 2.0])}
        b = {"w": np.array([3.0, 4.0])}
        np.testing.assert_allclose(average_state_dicts([a, b])["w"],
                                   [2.0, 3.0])

    def test_key_mismatch_rejected(self):
        with pytest.raises(ValueError):
            average_state_dicts([{"w": np.zeros(2)}, {"v": np.zeros(2)}])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_state_dicts([])


class TestDistributedLearner:
    def test_replicas_agree_after_sync(self):
        distributed = DistributedLearner(factory, num_workers=3,
                                         sync_every=1, window_batches=4)
        for batch in ElectricitySimulator(seed=1).stream(6, 192):
            distributed.process(batch)
        states = [
            worker.ensemble.short_level.model.state_dict()
            for worker in distributed.workers
        ]
        for state in states[1:]:
            for key in states[0]:
                np.testing.assert_array_equal(state[key], states[0][key])

    def test_sync_every_controls_rounds(self):
        distributed = DistributedLearner(factory, num_workers=2,
                                         sync_every=3, window_batches=4)
        reports = [distributed.process(batch) for batch
                   in ElectricitySimulator(seed=1).stream(9, 128)]
        assert distributed.syncs == 3
        assert [r.synced for r in reports] == [False, False, True] * 3

    def test_accuracy_aggregates_shards(self):
        distributed = DistributedLearner(factory, num_workers=2,
                                         sync_every=1, window_batches=4)
        reports = [distributed.process(batch) for batch
                   in ElectricitySimulator(seed=1).stream(20, 128)]
        accuracies = [r.accuracy for r in reports]
        assert all(0.0 <= a <= 1.0 for a in accuracies)
        assert np.mean(accuracies[5:]) > 0.7

    def test_learning_quality_close_to_single_worker(self):
        """Sharding + averaging should cost only a few accuracy points."""
        batches = ElectricitySimulator(seed=2).stream(40, 256).materialize()
        from repro.core import Learner
        single = Learner(factory, window_batches=4, seed=0)
        single_acc = np.mean([single.process(b).accuracy for b in batches])

        batches = ElectricitySimulator(seed=2).stream(40, 256).materialize()
        distributed = DistributedLearner(factory, num_workers=4,
                                         sync_every=1, window_batches=4)
        distributed_acc = np.mean(
            [distributed.process(b).accuracy for b in batches]
        )
        assert distributed_acc > single_acc - 0.07

    def test_ideal_speedup_reported(self):
        distributed = DistributedLearner(factory, num_workers=4,
                                         sync_every=1, window_batches=4)
        batch = next(iter(ElectricitySimulator(seed=1).stream(1, 256)))
        report = distributed.process(batch)
        assert len(report.worker_items) == 4
        assert sum(report.worker_items) == 256
        assert report.ideal_speedup > 1.0

    def test_predict_serves_from_replica(self, rng):
        distributed = DistributedLearner(factory, num_workers=2,
                                         sync_every=1, window_batches=4)
        for batch in ElectricitySimulator(seed=1).stream(6, 128):
            distributed.process(batch)
        prediction = distributed.predict(rng.normal(size=(10, 8)))
        assert prediction.labels.shape == (10,)

    def test_hash_partitioner_runs(self):
        distributed = DistributedLearner(factory, num_workers=2,
                                         sync_every=2, window_batches=4,
                                         partitioner="hash")
        for batch in ElectricitySimulator(seed=1).stream(6, 128):
            distributed.process(batch)
        assert distributed.syncs == 3

    def test_knowledge_accumulates_per_replica(self):
        def nsl_factory():
            return StreamingMLP(num_features=20, num_classes=5, lr=0.3,
                                seed=0)

        distributed = DistributedLearner(nsl_factory, num_workers=2,
                                         sync_every=1, window_batches=4)
        for batch in NSLKDDSimulator(seed=1).stream(30, 128):
            distributed.process(batch)
        # Every replica checkpoints knowledge at its own window boundaries.
        assert distributed.knowledge_entries() >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            DistributedLearner(factory, num_workers=0)
        with pytest.raises(ValueError):
            DistributedLearner(factory, sync_every=0)
        with pytest.raises(ValueError):
            DistributedLearner(factory, partitioner="bogus")


class TestBufferPoolUnderThreadBackend:
    """The perf buffer pool must never alias scratch across worker threads."""

    def test_concurrent_acquire_never_aliases(self):
        import threading
        from repro.perf import POOL

        barrier = threading.Barrier(2)
        grabbed: dict[str, list[np.ndarray]] = {}
        errors: list[BaseException] = []

        def worker(name):
            try:
                POOL.clear()
                # Warm this thread's free list, then re-acquire from it.
                warm = [POOL.acquire((16, 8)) for _ in range(4)]
                for buffer in warm:
                    POOL.release(buffer)
                barrier.wait(timeout=10)
                buffers = [POOL.acquire((16, 8)) for _ in range(4)]
                for buffer in buffers:
                    buffer[...] = hash(name) % 97
                grabbed[name] = buffers
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(name,))
                   for name in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        ids_a = {id(buffer) for buffer in grabbed["a"]}
        ids_b = {id(buffer) for buffer in grabbed["b"]}
        assert not ids_a & ids_b, "pool handed the same buffer to two threads"
        for buffer in grabbed["a"]:
            np.testing.assert_array_equal(buffer, np.full((16, 8),
                                                          hash("a") % 97))

    def test_thread_backend_matches_serial_bitwise(self):
        """Replicas on the thread backend (pool + tape active per thread)
        must produce exactly the serial backend's parameters."""

        def run(backend):
            distributed = DistributedLearner(factory, num_workers=2,
                                             sync_every=1, window_batches=4,
                                             backend=backend)
            for batch in ElectricitySimulator(seed=3).stream(8, 128):
                distributed.process(batch)
            return [
                {key: np.asarray(value).tobytes()
                 for key, value in
                 worker.ensemble.short_level.model.state_dict().items()}
                for worker in distributed.workers
            ]

        assert run("thread") == run("serial")
