"""Cross-module integration tests: the paper's claims at test scale."""

import numpy as np
import pytest

from repro.core import Learner, Strategy
from repro.data import (
    AnimalsStream,
    ElectricitySimulator,
    NSLKDDSimulator,
    Pattern,
    RandomProjectionFeaturizer,
)
from repro.eval import RunConfig, run_framework
from repro.metrics import evaluate_learner, evaluate_model, stability_index
from repro.models import StreamingCNN, StreamingMLP
from repro.shift import PatternClassifier, ShiftPattern


class TestHeadlineClaims:
    """Table I's shape at reduced scale: FreewayML >= plain SML."""

    @pytest.mark.parametrize("dataset_cls", [NSLKDDSimulator,
                                             ElectricitySimulator])
    def test_freewayml_beats_plain_mlp(self, dataset_cls):
        config = RunConfig(num_batches=80, batch_size=128, model="mlp",
                           seed=3)
        plain = run_framework("plain", dataset_cls(seed=3), config)
        freeway = run_framework("freewayml", dataset_cls(seed=3), config)
        assert freeway.g_acc > plain.g_acc

    def test_freewayml_more_stable_on_reoccurring_stream(self):
        config = RunConfig(num_batches=80, batch_size=128, model="mlp",
                           seed=3)
        plain = run_framework("plain", NSLKDDSimulator(seed=3), config)
        freeway = run_framework("freewayml", NSLKDDSimulator(seed=3), config)
        assert freeway.si > plain.si


class TestPatternDetectionQuality:
    def test_detector_finds_annotated_severe_shifts(self):
        """The label-free classifier should catch most ground-truth severe
        region *boundaries* (within a region the per-batch shift is small
        again, so only the first batch is expected to flag)."""
        generator = NSLKDDSimulator(seed=3)
        classifier = PatternClassifier(warmup_points=2)
        hits, total = 0, 0
        previous_severe = False
        for batch in generator.stream(100, batch_size=256):
            assessment = classifier.assess(batch.x)
            severe = batch.pattern in (Pattern.SUDDEN, Pattern.REOCCURRING)
            if severe and not previous_severe:  # region boundary
                total += 1
                if assessment.pattern in (ShiftPattern.SUDDEN,
                                          ShiftPattern.REOCCURRING):
                    hits += 1
            previous_severe = severe
        assert total >= 5
        assert hits / total >= 0.7

    def test_low_false_positive_rate_on_slight_batches(self):
        generator = ElectricitySimulator(seed=3)
        classifier = PatternClassifier(warmup_points=2)
        false_positives, slight_total = 0, 0
        for batch in generator.stream(100, batch_size=256):
            assessment = classifier.assess(batch.x)
            if batch.pattern == Pattern.SLIGHT:
                slight_total += 1
                if assessment.pattern in (ShiftPattern.SUDDEN,
                                          ShiftPattern.REOCCURRING):
                    false_positives += 1
        # Statistical detector on a jittering stream: some outlier shifts
        # are genuinely extreme; the Learner's verification absorbs them.
        assert false_positives / slight_total < 0.15


class TestMechanismWins:
    def test_reuse_dominates_plain_at_reoccurrence(self):
        generator = NSLKDDSimulator(seed=3)
        batches = generator.stream(100, batch_size=128).materialize()

        def factory():
            return StreamingMLP(num_features=20, num_classes=5,
                                lr=0.3, seed=0)

        plain = factory()
        plain_accs = []
        for batch in batches:
            plain_accs.append((plain.predict(batch.x) == batch.y).mean())
            plain.partial_fit(batch.x, batch.y)

        learner = Learner(factory, window_batches=8, seed=0)
        reuse_gaps = []
        for index, batch in enumerate(batches):
            report = learner.process(batch)
            if report.strategy == Strategy.KNOWLEDGE_REUSE.value:
                reuse_gaps.append(report.accuracy - plain_accs[index])
        assert reuse_gaps
        assert np.mean(reuse_gaps) > 0.3

    def test_cec_beats_collapsed_model_at_sudden_shift(self):
        generator = ElectricitySimulator(seed=3)
        batches = generator.stream(60, batch_size=256).materialize()

        def factory():
            return StreamingMLP(num_features=8, num_classes=2,
                                lr=0.3, seed=0)

        plain = factory()
        plain_accs = []
        for batch in batches:
            plain_accs.append((plain.predict(batch.x) == batch.y).mean())
            plain.partial_fit(batch.x, batch.y)

        sudden_indices = {batch.index for batch in batches
                          if batch.pattern == Pattern.SUDDEN}
        recovery_zone = {index + offset for index in sudden_indices
                         for offset in range(4)}

        learner = Learner(factory, window_batches=8, seed=0)
        cec_gaps = []
        for index, batch in enumerate(batches):
            report = learner.process(batch)
            if (report.strategy == Strategy.CEC.value
                    and index in recovery_zone):
                cec_gaps.append(report.accuracy - plain_accs[index])
        # CEC pays off in the recovery window after a sudden shift, once
        # the coherent experience contains post-shift labels (the shift
        # batch itself is hard for everyone — the paper's Section VI-F
        # limitation).
        assert cec_gaps
        assert np.mean(cec_gaps) > 0.0


class TestCNNPipeline:
    def test_freeway_cnn_on_image_stream(self):
        """Appendix pipeline: CNN + featurized CEC on an image stream."""
        stream_gen = AnimalsStream(seed=1)
        featurizer = RandomProjectionFeaturizer(
            stream_gen.num_features, 64, seed=0
        )

        def factory():
            return StreamingCNN(input_shape=(1, 16, 16), num_classes=4,
                                lr=0.1, seed=0, image_channels=8)

        learner = Learner(factory, window_batches=4, featurizer=featurizer,
                          seed=0)
        reports = [learner.process(batch)
                   for batch in stream_gen.stream(24, batch_size=32)]
        accuracies = [r.accuracy for r in reports]
        assert np.mean(accuracies[8:]) > 0.5  # far above 0.25 chance

    def test_freeway_cnn_beats_plain_cnn_on_tabular(self):
        config = RunConfig(num_batches=60, batch_size=128, model="cnn",
                           seed=3)
        plain = run_framework("plain", NSLKDDSimulator(seed=3), config)
        freeway = run_framework("freewayml", NSLKDDSimulator(seed=3), config)
        assert freeway.g_acc > plain.g_acc


class TestKnowledgeSpaceOverhead:
    def test_table4_shape(self):
        """Space grows linearly with k; MLP entries dwarf LR entries; total
        stays small (paper: < 2 MB at k=100)."""
        from repro.core import KnowledgeStore
        from repro.models import StreamingLR

        def entry_state(model):
            return model.state_dict()

        lr_model = StreamingLR(num_features=10, num_classes=2, seed=0)
        mlp_model = StreamingMLP(num_features=10, num_classes=2, seed=0)
        store = KnowledgeStore(capacity=1000)
        for k in range(100):
            store.preserve(np.zeros(2), entry_state(lr_model), "long",
                           0.5, k)
        lr_total = store.total_nbytes()
        assert lr_total < 2 * 1024 * 1024

        mlp_store = KnowledgeStore(capacity=1000)
        for k in range(100):
            mlp_store.preserve(np.zeros(2), entry_state(mlp_model), "long",
                               0.5, k)
        assert mlp_store.total_nbytes() > 3 * lr_total
