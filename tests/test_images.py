"""Tests for synthetic image streams (repro.data.images)."""

import numpy as np
import pytest

from repro.data import (
    IMAGE_REGISTRY,
    AnimalsStream,
    FlowersStream,
    ImageConcept,
    Pattern,
    RandomProjectionFeaturizer,
)


class TestImageConcept:
    def test_sample_shapes(self, rng):
        concept = ImageConcept(4, rng, size=12, channels=1)
        x, y = concept.sample(rng, 16)
        assert x.shape == (16, 1, 12, 12)
        assert set(np.unique(y)) <= set(range(4))

    def test_multi_channel(self, rng):
        concept = ImageConcept(3, rng, size=8, channels=3)
        x, _ = concept.sample(rng, 4)
        assert x.shape == (4, 3, 8, 8)
        # Channels are replicated copies of the same rendering.
        np.testing.assert_array_equal(x[:, 0], x[:, 1])

    def test_classes_are_distinguishable(self, rng):
        concept = ImageConcept(3, rng, size=16, noise=0.05)
        x, y = concept.sample(rng, 300)
        flat = x.reshape(len(x), -1)
        prototypes = np.stack([
            flat[y == label].mean(axis=0) for label in range(3)
        ])
        distances = np.linalg.norm(
            flat[:, None, :] - prototypes[None], axis=2
        )
        accuracy = (distances.argmin(axis=1) == y).mean()
        assert accuracy > 0.9

    def test_drift_moves_centres_within_bounds(self, rng):
        concept = ImageConcept(2, rng, size=10)
        before = concept.centres.copy()
        for _ in range(100):
            concept.drift(rng, 0.5)
        assert not np.allclose(concept.centres, before)
        assert concept.centres.min() >= 1.0
        assert concept.centres.max() <= 9.0

    def test_clone_independent(self, rng):
        concept = ImageConcept(2, rng)
        frozen = concept.clone()
        concept.jitter(rng, 2.0)
        assert not np.allclose(frozen.centres, concept.centres)

    def test_num_features(self, rng):
        concept = ImageConcept(2, rng, size=16, channels=1)
        assert concept.num_features == 256


@pytest.mark.parametrize("stream_cls,classes", [(AnimalsStream, 4),
                                                (FlowersStream, 5)])
class TestImageStreams:
    def test_shapes_and_patterns(self, stream_cls, classes):
        stream = stream_cls(seed=0)
        batches = stream.stream(40, batch_size=16).materialize()
        assert len(batches) == 40
        assert batches[0].x.shape == (16, 1, 16, 16)
        assert batches[0].y.max() < classes
        patterns = {b.pattern for b in batches}
        assert Pattern.SUDDEN in patterns
        assert Pattern.REOCCURRING in patterns

    def test_deterministic(self, stream_cls, classes):
        a = stream_cls(seed=2).stream(5, 8).materialize()
        b = stream_cls(seed=2).stream(5, 8).materialize()
        np.testing.assert_array_equal(a[3].x, b[3].x)


class TestRandomProjectionFeaturizer:
    def test_output_shape(self):
        featurizer = RandomProjectionFeaturizer(256, 64, seed=0)
        out = featurizer(np.zeros((10, 1, 16, 16)))
        assert out.shape == (10, 64)

    def test_nonnegative_relu_output(self, rng):
        featurizer = RandomProjectionFeaturizer(64, 32, seed=0)
        out = featurizer(rng.normal(size=(20, 64)))
        assert (out >= 0).all()
        assert (out > 0).any()

    def test_deterministic_given_seed(self, rng):
        x = rng.normal(size=(5, 64))
        a = RandomProjectionFeaturizer(64, 32, seed=1)(x)
        b = RandomProjectionFeaturizer(64, 32, seed=1)(x)
        np.testing.assert_array_equal(a, b)

    def test_preserves_class_separability(self, rng):
        concept = ImageConcept(3, rng, size=16, noise=0.05)
        x, y = concept.sample(rng, 300)
        featurizer = RandomProjectionFeaturizer(256, 64, seed=0)
        features = featurizer(x)
        prototypes = np.stack([
            features[y == label].mean(axis=0) for label in range(3)
        ])
        distances = np.linalg.norm(
            features[:, None, :] - prototypes[None], axis=2
        )
        assert (distances.argmin(axis=1) == y).mean() > 0.85

    def test_dimension_mismatch_raises(self):
        featurizer = RandomProjectionFeaturizer(64, 32)
        with pytest.raises(ValueError):
            featurizer(np.zeros((3, 100)))


class TestRegistry:
    def test_registry_contents(self):
        assert set(IMAGE_REGISTRY) == {"animals", "flowers"}
        assert IMAGE_REGISTRY["animals"] is AnimalsStream
