"""Tests for the stacked multi-model execution engine (``repro.nn.stacked``).

The load-bearing property is the equivalence contract: every stacked
operation — forward, loss, backward, optimizer step, dropout mask draws —
is bitwise-identical per model slice to running that model alone.  The
tests here assert it with ``np.array_equal`` (no tolerances), alongside
the rejection paths (heterogeneous architectures, mixed dtypes,
unsupported layers, mismatched optimizers) that push callers back onto
the serial path.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.stacked import architecture_key
from repro.perf.config import optimizations_disabled

NUM_FEATURES = 6
NUM_CLASSES = 3


def make_lr(seed):
    rng = np.random.default_rng(seed)
    return nn.Sequential(nn.Linear(NUM_FEATURES, NUM_CLASSES, rng=rng))


def make_mlp(seed, hidden=8, dropout=0.0):
    rng = np.random.default_rng(seed)
    layers = [nn.Linear(NUM_FEATURES, hidden, rng=rng), nn.ReLU()]
    if dropout:
        layers.append(nn.Dropout(dropout,
                                 rng=np.random.default_rng(seed + 1000)))
    layers.append(nn.Linear(hidden, NUM_CLASSES, rng=rng))
    return nn.Sequential(*layers)


def make_batch(seed, rows=12):
    rng = np.random.default_rng(100 + seed)
    x = rng.normal(size=(rows, NUM_FEATURES))
    y = rng.integers(0, NUM_CLASSES, size=rows)
    return x, y


def serial_step(module, optimizer, x, y):
    """One per-model training step, mirroring ``partial_fit``'s loop."""
    optimizer.zero_grad()
    loss = F.cross_entropy(module(nn.Tensor(x)), y)
    loss.backward()
    optimizer.step()
    return float(loss.data)


def serial_proba(module, x):
    logits_of = getattr(module, "forward", module)
    module.eval()
    with nn.no_grad():
        logits = logits_of(nn.Tensor(np.asarray(x, dtype=float)))
    module.train()
    data = logits.data
    shifted = data - data.max(axis=-1, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    return np.exp(shifted - log_norm)


def params_of(module):
    return [parameter.data.copy() for parameter in module.parameters()]


def assert_params_equal(module, expected):
    for parameter, saved in zip(module.parameters(), expected):
        np.testing.assert_array_equal(parameter.data, saved)


class TestRoundTrip:
    def test_stack_unstack_is_bitwise_faithful(self):
        modules = [make_mlp(seed) for seed in range(3)]
        before = [params_of(module) for module in modules]
        stack = nn.stack_models(modules)
        assert stack.num_models == 3
        out = nn.unstack_models(stack)
        assert out == modules  # returns the sources
        for module, saved in zip(modules, before):
            assert_params_equal(module, saved)

    @pytest.mark.parametrize("factory", [make_lr, make_mlp])
    def test_round_trip_after_k_training_steps(self, factory):
        num_models, steps = 4, 5
        serial = [factory(seed) for seed in range(num_models)]
        stacked = [factory(seed) for seed in range(num_models)]
        serial_opts = [nn.SGD(module.parameters(), lr=0.05, momentum=0.9)
                       for module in serial]
        stack = nn.stack_models(stacked)
        optimizer = nn.make_stacked_optimizer(
            stack, [nn.SGD(module.parameters(), lr=0.05, momentum=0.9)
                    for module in stacked])
        for step in range(steps):
            batches = [make_batch(step * num_models + index)
                       for index in range(num_models)]
            for module, opt, (x, y) in zip(serial, serial_opts, batches):
                serial_step(module, opt, x, y)
            nn.stacked_fit(stack, optimizer,
                           np.stack([x for x, _y in batches]),
                           np.stack([y for _x, y in batches]))
        nn.unstack_models(stack)
        for stacked_module, serial_module in zip(stacked, serial):
            assert_params_equal(stacked_module, params_of(serial_module))

    def test_predictions_match_serial_bitwise(self):
        modules = [make_mlp(seed) for seed in range(3)]
        xs = np.stack([make_batch(seed)[0] for seed in range(3)])
        stack = nn.stack_models(modules)
        stacked_proba = stack.predict_proba(xs)
        for index, module in enumerate(modules):
            np.testing.assert_array_equal(
                stacked_proba[index], serial_proba(module, xs[index]))

    def test_equivalence_holds_with_optimizations_disabled(self):
        serial = make_lr(7)
        stacked = make_lr(7)
        x, y = make_batch(7)
        with optimizations_disabled():
            serial_step(serial, nn.SGD(serial.parameters(), lr=0.1), x, y)
            stack = nn.stack_models([stacked])
            nn.stacked_fit(
                stack, nn.make_stacked_optimizer(
                    stack, [nn.SGD(stacked.parameters(), lr=0.1)]),
                x[None], y[None])
            nn.unstack_models(stack)
        assert_params_equal(stacked, params_of(serial))


class TestDegenerateAndRejection:
    def test_single_model_stack_matches_serial(self):
        serial = make_mlp(11)
        stacked = make_mlp(11)
        x, y = make_batch(11)
        loss = serial_step(serial, nn.SGD(serial.parameters(), lr=0.05),
                           x, y)
        stack = nn.stack_models([stacked])
        losses = nn.stacked_fit(
            stack,
            nn.make_stacked_optimizer(
                stack, [nn.SGD(stacked.parameters(), lr=0.05)]),
            x[None], y[None])
        nn.unstack_models(stack)
        assert losses.shape == (1,)
        assert losses[0] == loss
        assert_params_equal(stacked, params_of(serial))

    def test_empty_model_list_rejected(self):
        with pytest.raises(nn.StackedModelError, match="at least one"):
            nn.stack_models([])

    def test_mixed_dtypes_rejected_with_clear_error(self):
        low_precision = make_lr(1)
        for parameter in low_precision.parameters():
            parameter.data = parameter.data.astype(np.float32)
        with pytest.raises(nn.StackedModelError,
                           match="mixed parameter dtypes"):
            nn.stack_models([make_lr(0), low_precision])

    def test_heterogeneous_architectures_rejected(self):
        with pytest.raises(nn.StackedModelError,
                           match="architecture mismatch"):
            nn.stack_models([make_lr(0), make_mlp(1)])

    def test_unsupported_layers_rejected(self):
        conv = nn.Sequential(
            nn.Conv2d(1, 2, 3, rng=np.random.default_rng(0)))
        with pytest.raises(nn.StackedModelError, match="Conv2d"):
            architecture_key(conv)

    def test_mismatched_optimizer_hyperparameters_rejected(self):
        modules = [make_lr(seed) for seed in range(2)]
        stack = nn.stack_models(modules)
        optimizers = [nn.SGD(modules[0].parameters(), lr=0.1),
                      nn.SGD(modules[1].parameters(), lr=0.2)]
        with pytest.raises(nn.StackedModelError, match="'lr' differs"):
            nn.make_stacked_optimizer(stack, optimizers)

    def test_mixed_optimizer_types_rejected(self):
        modules = [make_lr(seed) for seed in range(2)]
        stack = nn.stack_models(modules)
        with pytest.raises(nn.StackedModelError, match="SGD"):
            nn.StackedSGD.from_optimizers(
                stack, [nn.SGD(modules[0].parameters(), lr=0.1),
                        nn.Adam(modules[1].parameters(), lr=0.1)])

    def test_adam_step_count_mismatch_rejected(self):
        modules = [make_lr(seed) for seed in range(2)]
        optimizers = [nn.Adam(module.parameters(), lr=0.01)
                      for module in modules]
        x, y = make_batch(0)
        serial_step(modules[0], optimizers[0], x, y)  # desyncs step counts
        stack = nn.stack_models(modules)
        with pytest.raises(nn.StackedModelError, match="step counts"):
            nn.StackedAdam.from_optimizers(stack, optimizers)


class TestDropoutUnderStacking:
    def test_masks_consume_each_models_own_rng_stream(self):
        # Train serially and stacked from identical initial states: the
        # dropout masks must come from each model's own generator in the
        # serial draw order, so parameters stay bitwise-equal throughout —
        # and a *serial* step after unstacking still matches, proving the
        # streams advanced identically.
        num_models = 3
        serial = [make_mlp(seed, dropout=0.5) for seed in range(num_models)]
        stacked = [make_mlp(seed, dropout=0.5) for seed in range(num_models)]
        serial_opts = [nn.SGD(module.parameters(), lr=0.05)
                       for module in serial]
        stacked_opts = [nn.SGD(module.parameters(), lr=0.05)
                        for module in stacked]
        batches = [make_batch(seed) for seed in range(num_models)]
        for module, opt, (x, y) in zip(serial, serial_opts, batches):
            serial_step(module, opt, x, y)
        stack = nn.stack_models(stacked)
        nn.stacked_fit(stack, nn.make_stacked_optimizer(stack, stacked_opts),
                       np.stack([x for x, _y in batches]),
                       np.stack([y for _x, y in batches]))
        nn.unstack_models(stack)
        for stacked_module, serial_module in zip(stacked, serial):
            assert_params_equal(stacked_module, params_of(serial_module))
        follow_up = make_batch(99)
        for module, opt in zip(serial, serial_opts):
            serial_step(module, opt, *follow_up)
        for module, opt in zip(stacked, stacked_opts):
            serial_step(module, opt, *follow_up)
        for stacked_module, serial_module in zip(stacked, serial):
            assert_params_equal(stacked_module, params_of(serial_module))


class TestStackedOptimizerState:
    def test_momentum_imports_and_exports_mid_training(self):
        num_models = 3
        serial = [make_lr(seed) for seed in range(num_models)]
        stacked = [make_lr(seed) for seed in range(num_models)]
        serial_opts = [nn.SGD(module.parameters(), lr=0.05, momentum=0.9)
                       for module in serial]
        stacked_opts = [nn.SGD(module.parameters(), lr=0.05, momentum=0.9)
                        for module in stacked]
        warmup = [make_batch(seed) for seed in range(num_models)]
        for pair in (zip(serial, serial_opts), zip(stacked, stacked_opts)):
            for (module, opt), (x, y) in zip(pair, warmup):
                serial_step(module, opt, x, y)  # accumulate velocity
        stack = nn.stack_models(stacked)
        optimizer = nn.StackedSGD.from_optimizers(stack, stacked_opts)
        batches = [make_batch(50 + seed) for seed in range(num_models)]
        for module, opt, (x, y) in zip(serial, serial_opts, batches):
            serial_step(module, opt, x, y)
        nn.stacked_fit(stack, optimizer,
                       np.stack([x for x, _y in batches]),
                       np.stack([y for _x, y in batches]))
        nn.unstack_models(stack)
        optimizer.export_to(stacked_opts)
        for stacked_module, serial_module in zip(stacked, serial):
            assert_params_equal(stacked_module, params_of(serial_module))
        for stacked_opt, serial_opt in zip(stacked_opts, serial_opts):
            serial_opt._export_flat_state()
            assert set(stacked_opt._velocity) == set(serial_opt._velocity)
            for index, velocity in serial_opt._velocity.items():
                np.testing.assert_array_equal(
                    stacked_opt._velocity[index], velocity)

    def test_adam_moments_round_trip(self):
        num_models = 2
        serial = [make_mlp(seed) for seed in range(num_models)]
        stacked = [make_mlp(seed) for seed in range(num_models)]
        serial_opts = [nn.Adam(module.parameters(), lr=0.01)
                       for module in serial]
        stacked_opts = [nn.Adam(module.parameters(), lr=0.01)
                        for module in stacked]
        for step in range(3):
            batches = [make_batch(step * num_models + seed)
                       for seed in range(num_models)]
            for module, opt, (x, y) in zip(serial, serial_opts, batches):
                serial_step(module, opt, x, y)
            stack = nn.stack_models(stacked)
            optimizer = nn.make_stacked_optimizer(stack, stacked_opts)
            nn.stacked_fit(stack, optimizer,
                           np.stack([x for x, _y in batches]),
                           np.stack([y for _x, y in batches]))
            nn.unstack_models(stack)
            optimizer.export_to(stacked_opts)
        for stacked_module, serial_module in zip(stacked, serial):
            assert_params_equal(stacked_module, params_of(serial_module))
        for stacked_opt, serial_opt in zip(stacked_opts, serial_opts):
            serial_opt._export_flat_state()
            assert stacked_opt._step_count == serial_opt._step_count
            for state in ("_m", "_v"):
                mine, theirs = (getattr(stacked_opt, state),
                                getattr(serial_opt, state))
                assert set(mine) == set(theirs)
                for index, value in theirs.items():
                    np.testing.assert_array_equal(mine[index], value)


class TestStackedCrossEntropy:
    def test_losses_match_serial_bitwise(self):
        modules = [make_lr(seed) for seed in range(3)]
        batches = [make_batch(seed) for seed in range(3)]
        serial_losses = [
            float(F.cross_entropy(module(nn.Tensor(x)), y).data)
            for module, (x, y) in zip(modules, batches)]
        stack = nn.stack_models(modules)
        logits = stack(nn.Tensor(np.stack([x for x, _y in batches])))
        losses = nn.stacked_cross_entropy(
            logits, np.stack([y for _x, y in batches]))
        np.testing.assert_array_equal(losses.data, serial_losses)

    def test_shape_and_label_validation(self):
        stack = nn.stack_models([make_lr(0), make_lr(1)])
        x = np.stack([make_batch(0)[0], make_batch(1)[0]])
        logits = stack(nn.Tensor(x))
        with pytest.raises(nn.StackedModelError, match="models, batch"):
            nn.stacked_cross_entropy(nn.Tensor(np.zeros((4, 2))), [0, 1])
        with pytest.raises(ValueError, match="labels"):
            nn.stacked_cross_entropy(logits, np.zeros((2, 3), dtype=int))
        bad = np.full((2, 12), NUM_CLASSES, dtype=int)
        with pytest.raises(ValueError, match="lie in"):
            nn.stacked_cross_entropy(logits, bad)
