"""Tests for the unified estimator API (repro.api) and execution backends."""

import threading

import numpy as np
import pytest

import repro
from repro.api import (
    BaseReport,
    StreamingEstimator,
    make_learner,
    report_from_dict,
)
from repro.baselines import make_baseline
from repro.core.learner import BatchReport, Learner
from repro.data import ElectricitySimulator
from repro.data.stream import Batch
from repro.distributed import (
    DistributedLearner,
    DistributedReport,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    average_state_dicts,
    make_backend,
    round_robin_partition,
)
from repro.eval import summarize_reports
from repro.models import StreamingLR, StreamingMLP


def lr_factory():
    return StreamingLR(num_features=8, num_classes=2, lr=0.3, seed=0)


def mlp_factory():
    return StreamingMLP(num_features=8, num_classes=2, lr=0.3, seed=0)


def stream(n, batch_size=96, seed=1):
    return ElectricitySimulator(seed=seed).stream(n, batch_size).materialize()


needs_fork = pytest.mark.skipif(
    not ProcessBackend.available(),
    reason="platform lacks the fork start method",
)


# -- StreamingEstimator protocol ----------------------------------------------


class TestProtocolConformance:
    def test_learner_conforms(self):
        assert isinstance(Learner(lr_factory), StreamingEstimator)

    def test_distributed_learner_conforms(self):
        distributed = DistributedLearner(lr_factory, num_workers=2)
        assert isinstance(distributed, StreamingEstimator)

    @pytest.mark.parametrize("name", ["river", "spark-mllib"])
    def test_baselines_conform(self, name):
        baseline = make_baseline(name, mlp_factory)
        assert isinstance(baseline, StreamingEstimator)

    def test_non_estimator_rejected(self):
        assert not isinstance(object(), StreamingEstimator)

    def test_baseline_process_and_summary(self):
        baseline = make_baseline("river", mlp_factory)
        batch = stream(1)[0]
        report = baseline.process(batch)
        assert isinstance(report, BatchReport)
        assert report.batch_index == batch.index
        assert report.num_items == len(batch)
        assert report.strategy == baseline.name
        assert 0.0 <= report.accuracy <= 1.0
        assert report.latency_s > 0.0
        loss = baseline.update(batch.x, batch.y)
        assert loss is None or np.isfinite(loss)
        summary = baseline.summary()
        assert summary["batches_processed"] == 1

    def test_learner_summary_counts(self):
        learner = Learner(lr_factory, window_batches=4)
        for batch in stream(3):
            learner.process(batch)
        summary = learner.summary()
        assert summary["batches_processed"] == 3
        assert sum(summary["strategies"].values()) == 3

    def test_distributed_summary_counts(self):
        distributed = DistributedLearner(lr_factory, num_workers=2,
                                         window_batches=4)
        for batch in stream(3):
            distributed.process(batch)
        summary = distributed.summary()
        assert summary["batches_processed"] == 3
        assert summary["backend"] == "serial"
        assert summary["syncs"] == 3


# -- report family ------------------------------------------------------------


class TestReportFamily:
    def batch_report(self):
        return BatchReport(batch_index=4, num_items=64, strategy="cec",
                           pattern="sudden", accuracy=0.75, loss=0.5,
                           predict_seconds=0.01, update_seconds=0.02)

    def test_batch_report_roundtrip(self):
        report = self.batch_report()
        payload = report.to_dict()
        assert payload["kind"] == "batch"
        clone = report_from_dict(payload)
        assert isinstance(clone, BatchReport)
        assert clone == report

    def test_distributed_report_roundtrip(self):
        report = DistributedReport(
            batch_index=2, num_items=128, strategy="multi_granularity",
            accuracy=0.5, latency_s=0.1, backend="thread", synced=True,
            worker_items=[64, 64], worker_seconds=[0.01, 0.02],
        )
        clone = report_from_dict(report.to_dict())
        assert isinstance(clone, DistributedReport)
        assert clone == report
        assert clone.worker_items == [64, 64]

    def test_latency_defaults_to_stage_sum(self):
        assert self.batch_report().latency_s == pytest.approx(0.03)

    def test_from_dict_ignores_unknown_keys(self):
        payload = self.batch_report().to_dict()
        payload["added_in_a_future_release"] = 1
        assert report_from_dict(payload).batch_index == 4

    def test_subclass_rejects_foreign_kind(self):
        payload = self.batch_report().to_dict()
        with pytest.raises(ValueError):
            DistributedReport.from_dict(payload)

    def test_index_alias_removed(self):
        # The PR-3 ``.index`` deprecation shim is gone: one release of
        # warnings, then a clean AttributeError.
        with pytest.raises(AttributeError):
            self.batch_report().index

    def test_unknown_kind_rejected_with_known_kinds(self):
        payload = self.batch_report().to_dict()
        payload["kind"] = "hologram"
        with pytest.raises(ValueError, match="unknown report kind"):
            report_from_dict(payload)
        with pytest.raises(ValueError, match="batch"):
            report_from_dict(payload)  # the error lists known kinds

    def test_base_kind_round_trips(self):
        report = BaseReport(batch_index=7, num_items=32, strategy="plain",
                            accuracy=0.5, latency_s=0.01)
        clone = report_from_dict(report.to_dict())
        assert type(clone) is BaseReport
        assert clone == report

    def test_summarize_reports_mixes_kinds(self):
        reports = [
            self.batch_report(),
            DistributedReport(batch_index=5, num_items=64, strategy="cec",
                              accuracy=0.25, latency_s=0.01,
                              worker_seconds=[0.01]),
            BaseReport(batch_index=6, num_items=64, strategy="plain",
                       accuracy=0.5, latency_s=0.02),
        ]
        summary = summarize_reports(reports)
        assert summary["batches"] == 3
        assert summary["items"] == 192
        assert summary["accuracy"] == pytest.approx(0.5)
        assert summary["strategies"] == {"cec": 2, "plain": 1}
        assert summary["throughput"] > 0

    def test_summarize_reports_survives_round_trip(self):
        # Mixed-kind summaries must not care whether reports were
        # reconstructed from their serialized form.
        reports = [
            self.batch_report(),
            DistributedReport(batch_index=5, num_items=64, strategy="cec",
                              accuracy=0.25, latency_s=0.01,
                              worker_seconds=[0.01]),
        ]
        revived = [report_from_dict(report.to_dict())
                   for report in reports]
        assert summarize_reports(revived) == summarize_reports(reports)

    def test_summarize_reports_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_reports([])


# -- estimator-API v1 ----------------------------------------------------------


class TestEstimatorApiV1:
    def test_camelcase_kwargs_removed(self):
        # PR-3's CamelCase paper aliases finished their deprecation
        # window: they now raise like any other unknown keyword.
        with pytest.raises(TypeError):
            Learner.from_paper_config(Model=lr_factory, ModelNum=3)

    def test_canonical_kwargs_work(self):
        learner = Learner.from_paper_config(model=lr_factory, num_models=2,
                                            knowledge_capacity=11)
        assert learner.knowledge.capacity == 11

    def test_model_required(self):
        with pytest.raises(TypeError):
            Learner.from_paper_config(num_models=2)

    def test_constructor_config_is_keyword_only(self):
        with pytest.raises(TypeError):
            Learner(lr_factory, 3)  # num_models positionally

    @pytest.mark.parametrize("build", [
        lambda: Learner(lr_factory),
        lambda: make_baseline("river", mlp_factory),
        lambda: DistributedLearner(lr_factory, num_workers=2),
    ], ids=["learner", "baseline", "distributed"])
    def test_close_is_idempotent_and_leaves_summary_usable(self, build):
        estimator = build()
        estimator.process(stream(1)[0])
        estimator.close()
        estimator.close()  # idempotent by contract
        assert estimator.summary()["batches_processed"] == 1

    def test_estimators_are_context_managers(self):
        with Learner(lr_factory) as learner:
            learner.process(stream(1)[0])
        assert learner.summary()["batches_processed"] == 1
        with make_baseline("river", mlp_factory) as baseline:
            baseline.process(stream(1)[0])
        assert baseline.summary()["batches_processed"] == 1

    def test_distributed_context_manager_closes_backend(self):
        with DistributedLearner(lr_factory, num_workers=2,
                                backend="thread") as distributed:
            distributed.process(stream(1)[0])
        summary = distributed.summary()
        assert summary["batches_processed"] == 1


# -- facade -------------------------------------------------------------------


class TestFacade:
    def test_freewayml_alias(self):
        assert repro.FreewayML is Learner
        from repro.api import FreewayML
        assert FreewayML is Learner

    def test_make_learner_single(self):
        learner = make_learner(lr_factory)
        assert type(learner) is Learner

    def test_make_learner_distributed(self):
        learner = make_learner(lr_factory, num_workers=3, sync_every=2)
        assert isinstance(learner, DistributedLearner)
        assert learner.num_workers == 3
        assert learner.sync_every == 2

    def test_make_learner_backend_forces_distributed(self):
        learner = make_learner(lr_factory, backend="thread")
        assert isinstance(learner, DistributedLearner)
        assert learner.backend.name == "thread"
        learner.close()

    def test_reexports(self):
        for name in ("make_learner", "StreamingEstimator", "BaseReport",
                     "report_from_dict", "FreewayML"):
            assert name in repro.__all__


# -- backends -----------------------------------------------------------------


def legacy_serial_loop(batches, num_workers=3, seed=0):
    """The pre-backend DistributedLearner loop, replicated verbatim."""
    workers = [Learner(mlp_factory, seed=seed + w, window_batches=4)
               for w in range(num_workers)]
    accuracies = []
    for batch in batches:
        shards = round_robin_partition(len(batch), num_workers)
        correct = 0.0
        total = 0
        for learner, shard in zip(workers, shards):
            report = learner.process(batch.subset(shard))
            if report.accuracy is not None:
                correct += report.accuracy * len(shard)
                total += len(shard)
        accuracies.append(correct / total if total else None)
        for level_index in range(len(workers[0].ensemble.levels)):
            states = [w.ensemble.levels[level_index].model.state_dict()
                      for w in workers]
            averaged = average_state_dicts(states)
            for w in workers:
                w.ensemble.levels[level_index].model.load_state_dict(averaged)
    return accuracies


def backend_accuracies(backend, batches, num_workers=3, seed=0,
                       use_run=False):
    distributed = DistributedLearner(mlp_factory, num_workers=num_workers,
                                     backend=backend, seed=seed,
                                     window_batches=4)
    try:
        if use_run:
            reports = distributed.run(iter(batches))
        else:
            reports = [distributed.process(b) for b in batches]
        return [r.accuracy for r in reports]
    finally:
        distributed.close()


class TestBackendEquivalence:
    def test_serial_matches_legacy_loop(self):
        batches = stream(6)
        assert backend_accuracies("serial", batches) == \
            legacy_serial_loop(batches)

    def test_thread_matches_serial(self):
        batches = stream(6)
        assert backend_accuracies("thread", batches) == \
            backend_accuracies("serial", batches)

    def test_pipelined_run_matches_process_loop(self):
        batches = stream(6)
        backend = ThreadBackend(max_inflight=2)
        assert backend_accuracies(backend, batches, use_run=True) == \
            backend_accuracies("serial", batches)

    @needs_fork
    def test_process_matches_serial(self):
        batches = stream(6)
        assert backend_accuracies("process", batches) == \
            backend_accuracies("serial", batches)

    @needs_fork
    def test_process_pipe_fallback_matches_serial(self):
        # Growing batches overflow the ring slots sized from the first
        # batch, exercising the pipe-transport fallback mid-stream.
        generator = ElectricitySimulator(seed=4)
        batches = []
        for index, size in enumerate([48, 48, 192, 192]):
            big = next(iter(generator.stream(1, size)))
            batches.append(Batch(big.x, big.y, index=index))
        backend = ProcessBackend(max_inflight=2, slot_slack=1.0)
        assert backend_accuracies(backend, batches, use_run=True) == \
            backend_accuracies("serial", batches)


class TestBackendBehaviour:
    def test_make_backend_resolves_names(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("thread"), ThreadBackend)
        assert isinstance(make_backend("process"), ProcessBackend)

    def test_make_backend_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("mpi")

    def test_make_backend_passthrough(self):
        backend = ThreadBackend(max_inflight=3)
        assert make_backend(backend) is backend
        with pytest.raises(ValueError):
            make_backend(backend, max_inflight=2)

    def test_report_carries_backend_name(self):
        distributed = DistributedLearner(lr_factory, num_workers=2,
                                         backend="thread", window_batches=4)
        try:
            report = distributed.process(stream(1)[0])
        finally:
            distributed.close()
        assert report.backend == "thread"
        assert report.kind == "distributed"

    def test_submit_backpressure(self):
        backend = ThreadBackend(max_inflight=1)
        distributed = DistributedLearner(lr_factory, num_workers=2,
                                         backend=backend, window_batches=4)
        try:
            batch = stream(1)[0]
            backend.submit(distributed._shard_batches(batch))
            with pytest.raises(RuntimeError, match="in flight"):
                backend.submit(distributed._shard_batches(batch))
            backend.drain()
            with pytest.raises(RuntimeError, match="nothing in flight"):
                backend.drain()
        finally:
            distributed.close()

    def test_state_access_requires_drained(self):
        backend = ThreadBackend(max_inflight=1)
        distributed = DistributedLearner(lr_factory, num_workers=2,
                                         backend=backend, window_batches=4)
        try:
            backend.submit(distributed._shard_batches(stream(1)[0]))
            with pytest.raises(RuntimeError, match="drained"):
                backend.gather_states(0)
            backend.drain()
        finally:
            distributed.close()

    @needs_fork
    def test_process_predict_update_and_close(self, rng):
        distributed = DistributedLearner(lr_factory, num_workers=2,
                                         backend="process", window_batches=4)
        batches = stream(3)
        for batch in batches:
            distributed.process(batch)
        prediction = distributed.predict(rng.normal(size=(10, 8)))
        assert prediction.labels.shape == (10,)
        loss = distributed.update(batches[0].x, batches[0].y)
        assert loss is None or np.isfinite(loss)
        assert distributed.knowledge_entries() >= 0
        distributed.close()
        distributed.close()  # idempotent

    @needs_fork
    def test_process_worker_error_propagates(self):
        distributed = DistributedLearner(lr_factory, num_workers=2,
                                         backend="process", window_batches=4)
        try:
            distributed.process(stream(1)[0])
            bad = stream(1)[0]
            with pytest.raises(RuntimeError, match="worker"):
                distributed.process(Batch(bad.x[:, :5], bad.y, index=1))
        finally:
            distributed.close()

    def test_context_manager_closes(self):
        with DistributedLearner(lr_factory, num_workers=2,
                                backend="thread",
                                window_batches=4) as distributed:
            distributed.process(stream(1)[0])
        assert distributed.backend._pools == []


class TestVectorizedAveraging:
    def test_matches_per_key_mean(self, rng):
        states = [
            {"w": rng.normal(size=(4, 3)), "b": rng.normal(size=3)}
            for _ in range(5)
        ]
        averaged = average_state_dicts(states)
        for key in ("w", "b"):
            np.testing.assert_allclose(
                averaged[key],
                np.mean([s[key] for s in states], axis=0),
                rtol=0, atol=1e-15,
            )
            assert averaged[key].shape == states[0][key].shape

    def test_preserves_dtype(self):
        states = [{"w": np.zeros(2, dtype=np.float32)},
                  {"w": np.ones(2, dtype=np.float32)}]
        assert average_state_dicts(states)["w"].dtype == np.float32


class TestGradModeThreadLocal:
    def test_no_grad_does_not_leak_across_threads(self):
        from repro import nn

        entered = threading.Event()
        release = threading.Event()
        seen = {}

        def hold_no_grad():
            with nn.no_grad():
                entered.set()
                release.wait(timeout=5)

        def probe():
            entered.wait(timeout=5)
            seen["enabled"] = nn.is_grad_enabled()
            release.set()

        workers = [threading.Thread(target=hold_no_grad),
                   threading.Thread(target=probe)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=10)
        assert seen["enabled"] is True
