"""Tests for neural-network ops (repro.nn.functional)."""

import numpy as np
import pytest
from scipy.signal import correlate2d

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor

from conftest import numeric_gradient


class TestLinear:
    def test_matches_manual_affine(self, rng):
        x = rng.normal(size=(5, 3))
        w = rng.normal(size=(4, 3))
        b = rng.normal(size=4)
        out = F.linear(Tensor(x), Tensor(w), Tensor(b))
        np.testing.assert_allclose(out.data, x @ w.T + b)

    def test_no_bias(self, rng):
        x = rng.normal(size=(2, 3))
        w = rng.normal(size=(4, 3))
        out = F.linear(Tensor(x), Tensor(w))
        np.testing.assert_allclose(out.data, x @ w.T)


class TestSoftmaxFamily:
    def test_softmax_sums_to_one(self, rng):
        logits = Tensor(rng.normal(size=(6, 4)) * 10)
        probs = F.softmax(logits).data
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(6), atol=1e-12)
        assert (probs >= 0).all()

    def test_softmax_shift_invariance(self, rng):
        logits = rng.normal(size=(3, 5))
        p1 = F.softmax(Tensor(logits)).data
        p2 = F.softmax(Tensor(logits + 100.0)).data
        np.testing.assert_allclose(p1, p2, atol=1e-12)

    def test_log_softmax_stable_for_large_logits(self):
        out = F.log_softmax(Tensor([[1000.0, 0.0]])).data
        assert np.isfinite(out).all()

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = Tensor([[100.0, 0.0], [0.0, 100.0]])
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() == pytest.approx(0.0, abs=1e-9)

    def test_cross_entropy_uniform_is_log_c(self):
        logits = Tensor(np.zeros((4, 3)))
        loss = F.cross_entropy(logits, np.array([0, 1, 2, 0]))
        assert loss.item() == pytest.approx(np.log(3), rel=1e-9)

    def test_cross_entropy_gradcheck(self, rng):
        logits_data = rng.normal(size=(4, 3))
        labels = np.array([0, 2, 1, 1])
        logits = Tensor(logits_data.copy(), requires_grad=True)
        F.cross_entropy(logits, labels).backward()
        numeric = numeric_gradient(
            lambda: F.cross_entropy(Tensor(logits_data), labels).item(),
            logits_data,
        )
        np.testing.assert_allclose(logits.grad, numeric, atol=1e-6)

    def test_nll_loss_matches_cross_entropy(self, rng):
        logits = rng.normal(size=(5, 4))
        labels = np.array([0, 1, 2, 3, 0])
        ce = F.cross_entropy(Tensor(logits), labels).item()
        nll = F.nll_loss(F.log_softmax(Tensor(logits)), labels).item()
        assert ce == pytest.approx(nll, rel=1e-12)


class TestOneHot:
    def test_encoding(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)
        with pytest.raises(ValueError):
            F.one_hot(np.array([-1]), 3)


class TestOtherLosses:
    def test_mse_loss(self):
        loss = F.mse_loss(Tensor([1.0, 3.0]), np.array([1.0, 1.0]))
        assert loss.item() == pytest.approx(2.0)

    def test_mse_gradcheck(self, rng):
        pred_data = rng.normal(size=6)
        target = rng.normal(size=6)
        pred = Tensor(pred_data.copy(), requires_grad=True)
        F.mse_loss(pred, target).backward()
        numeric = numeric_gradient(
            lambda: F.mse_loss(Tensor(pred_data), target).item(), pred_data
        )
        np.testing.assert_allclose(pred.grad, numeric, atol=1e-6)

    def test_bce_with_logits_matches_manual(self, rng):
        logits = rng.normal(size=8)
        target = (rng.random(8) > 0.5).astype(float)
        loss = F.binary_cross_entropy_with_logits(
            Tensor(logits), target
        ).item()
        p = 1.0 / (1.0 + np.exp(-logits))
        manual = -(target * np.log(p) + (1 - target) * np.log(1 - p)).mean()
        assert loss == pytest.approx(manual, rel=1e-9)

    def test_bce_stable_extreme_logits(self):
        loss = F.binary_cross_entropy_with_logits(
            Tensor([1000.0, -1000.0]), np.array([1.0, 0.0])
        )
        assert np.isfinite(loss.item())


class TestDropout:
    def test_eval_mode_identity(self, rng):
        x = Tensor(np.ones((10, 10)))
        out = F.dropout(x, 0.5, training=False, rng=rng)
        np.testing.assert_allclose(out.data, x.data)

    def test_training_scales_survivors(self, rng):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.5, training=True, rng=rng).data
        survivors = out[out > 0]
        np.testing.assert_allclose(survivors, 2.0)
        assert abs((out > 0).mean() - 0.5) < 0.05

    def test_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            F.dropout(Tensor([1.0]), 1.0, training=True, rng=rng)


class TestConv2d:
    def test_matches_scipy_correlate(self, rng):
        x = rng.normal(size=(1, 1, 6, 6))
        w = rng.normal(size=(1, 1, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w)).data
        expected = correlate2d(x[0, 0], w[0, 0], mode="valid")
        np.testing.assert_allclose(out[0, 0], expected, atol=1e-10)

    def test_padding_keeps_size(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        w = Tensor(rng.normal(size=(4, 3, 3, 3)))
        out = F.conv2d(x, w, padding=1)
        assert out.shape == (2, 4, 8, 8)

    def test_stride(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 8, 8)))
        w = Tensor(rng.normal(size=(1, 1, 2, 2)))
        out = F.conv2d(x, w, stride=2)
        assert out.shape == (1, 1, 4, 4)

    def test_rectangular_kernel_1d_style(self, rng):
        x = Tensor(rng.normal(size=(2, 1, 1, 10)))
        w = Tensor(rng.normal(size=(5, 1, 1, 3)))
        out = F.conv2d(x, w, padding=(0, 1))
        assert out.shape == (2, 5, 1, 10)

    def test_bias_added_per_channel(self, rng):
        x = Tensor(np.zeros((1, 1, 4, 4)))
        w = Tensor(np.zeros((2, 1, 3, 3)))
        b = Tensor(np.array([1.0, -2.0]))
        out = F.conv2d(x, w, b).data
        np.testing.assert_allclose(out[0, 0], 1.0)
        np.testing.assert_allclose(out[0, 1], -2.0)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 2, 4, 4))),
                     Tensor(np.zeros((1, 3, 3, 3))))

    def test_wrong_rank_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((4, 4))), Tensor(np.zeros((1, 1, 3, 3))))

    def test_empty_output_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 1, 2, 2))),
                     Tensor(np.zeros((1, 1, 5, 5))))

    def test_input_gradcheck(self, rng):
        x_data = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        b = rng.normal(size=3)
        x = Tensor(x_data.copy(), requires_grad=True)
        F.conv2d(x, Tensor(w), Tensor(b), padding=1).sum().backward()
        numeric = numeric_gradient(
            lambda: F.conv2d(Tensor(x_data), Tensor(w), Tensor(b),
                             padding=1).sum().item(),
            x_data,
        )
        np.testing.assert_allclose(x.grad, numeric, atol=1e-5)

    def test_weight_and_bias_gradcheck(self, rng):
        x = rng.normal(size=(2, 1, 4, 4))
        w_data = rng.normal(size=(2, 1, 2, 2))
        b_data = rng.normal(size=2)
        w = Tensor(w_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        F.conv2d(Tensor(x), w, b, stride=2).sum().backward()
        numeric_w = numeric_gradient(
            lambda: F.conv2d(Tensor(x), Tensor(w_data), Tensor(b_data),
                             stride=2).sum().item(),
            w_data,
        )
        numeric_b = numeric_gradient(
            lambda: F.conv2d(Tensor(x), Tensor(w_data), Tensor(b_data),
                             stride=2).sum().item(),
            b_data,
        )
        np.testing.assert_allclose(w.grad, numeric_w, atol=1e-5)
        np.testing.assert_allclose(b.grad, numeric_b, atol=1e-5)


class TestMaxPool2d:
    def test_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2).data
        np.testing.assert_allclose(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_rectangular_window(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 1, 8)))
        out = F.max_pool2d(x, (1, 2))
        assert out.shape == (2, 3, 1, 4)

    def test_gradient_routes_to_max(self):
        x_data = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        x = Tensor(x_data.copy(), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        np.testing.assert_allclose(
            x.grad, [[[[0.0, 0.0], [0.0, 1.0]]]]
        )

    def test_gradcheck(self, rng):
        x_data = rng.normal(size=(2, 2, 4, 4))
        x = Tensor(x_data.copy(), requires_grad=True)
        (F.max_pool2d(x, 2) * 2.0).sum().backward()
        numeric = numeric_gradient(
            lambda: (F.max_pool2d(Tensor(x_data), 2) * 2.0).sum().item(),
            x_data,
        )
        np.testing.assert_allclose(x.grad, numeric, atol=1e-5)
