"""Targeted tests for remaining uncovered corners across modules."""

import numpy as np
import pytest

from repro.baselines import FlinkMLBaseline, make_baseline
from repro.core import Learner, RateAwareAdjuster
from repro.data import Batch, ElectricitySimulator
from repro.eval import RunConfig, render_accuracy_table, run_framework
from repro.models import StreamingLR


def lr_factory():
    return StreamingLR(num_features=8, num_classes=2, lr=0.3, seed=0)


class TestReportingGaps:
    def test_missing_framework_renders_dash(self):
        config = RunConfig(num_batches=5, batch_size=64, model="lr")
        result = run_framework("plain", ElectricitySimulator(seed=0), config)
        results = {
            "a": {"plain": result},
            "b": {},  # framework absent for dataset b
        }
        text = render_accuracy_table(results)
        assert "-" in text.splitlines()[-1]


class TestBaselineGaps:
    def test_reset_model_gives_fresh_weights(self, blob_data):
        x, y = blob_data[0][:, :4], blob_data[1]
        baseline = FlinkMLBaseline(
            lambda: StreamingLR(num_features=4, num_classes=2, lr=0.5,
                                seed=0)
        )
        initial = {k: v.copy() for k, v in baseline.state_dict().items()}
        baseline.partial_fit(x, y)
        assert not all(np.array_equal(v, initial[k])
                       for k, v in baseline.state_dict().items())
        baseline.reset_model()
        for key, value in baseline.state_dict().items():
            np.testing.assert_array_equal(value, initial[key])

    def test_make_baseline_forwards_kwargs(self):
        baseline = make_baseline("flink-ml", lr_factory, watermark_delay=2)
        assert baseline.watermark_delay == 2


class TestCliGaps:
    def test_compare_on_csv(self, tmp_path, capsys, rng):
        from repro.cli import main
        x = rng.normal(size=(200, 3))
        y = (x[:, 0] > 0).astype(int)
        lines = [",".join(f"{v:.4f}" for v in row) + f",{label}"
                 for row, label in zip(x, y)]
        path = tmp_path / "data.csv"
        path.write_text("\n".join(lines) + "\n")
        code = main(["compare", "--csv", str(path), "--model", "lr",
                     "--batches", "4", "--batch-size", "40"])
        assert code == 0
        out = capsys.readouterr().out
        assert "freewayml" in out
        assert "alink" in out


class TestAdjusterEndToEnd:
    def test_burst_throttles_then_recovers(self, rng):
        """Drive the learner through a simulated burst with a fake clock
        and watch the stride rise and fall."""
        class FakeClock:
            now = 0.0

            def __call__(self):
                return FakeClock.now

        adjuster = RateAwareAdjuster(high_rate=1000.0, max_stride=3,
                                     clock=FakeClock())
        learner = Learner(lr_factory, window_batches=4, adjuster=adjuster)

        def batch(index):
            x = rng.normal(size=(128, 8))
            return Batch(x, (x[:, 0] > 0).astype(int), index=index)

        strides = []
        for index in range(45):
            # A burst where batches arrive 1000x faster, then a long calm
            # stretch for the EMA flow estimate to cool down.
            FakeClock.now += 0.001 if 10 <= index < 20 else 1.0
            learner.process(batch(index))
            strides.append(adjuster.inference_stride)
        assert max(strides[10:20]) > 1      # throttled during the burst
        assert strides[-1] == 1             # recovered afterwards

    def test_decay_boost_propagates_to_windows(self, rng):
        class FakeClock:
            now = 0.0

            def __call__(self):
                return FakeClock.now

        adjuster = RateAwareAdjuster(high_rate=10.0, clock=FakeClock())
        learner = Learner(lr_factory, window_batches=4, adjuster=adjuster)

        def batch(index):
            x = rng.normal(size=(128, 8))
            return Batch(x, (x[:, 0] > 0).astype(int), index=index)

        for index in range(8):
            FakeClock.now += 0.0001  # extreme flow rate
            learner.process(batch(index))
        window = learner.ensemble.long_levels[0].window
        assert window.decay_boost == 2.0


class TestSequentialEdge:
    def test_empty_sequential_is_identity(self, rng):
        from repro import nn
        model = nn.Sequential()
        x = nn.Tensor(rng.normal(size=(3, 2)))
        out = model(x)
        np.testing.assert_array_equal(out.data, x.data)
        assert model.num_parameters() == 0


class TestFromPaperConfigKwargs:
    def test_extra_kwargs_forwarded(self):
        learner = Learner.from_paper_config(
            model=lr_factory, num_models=2, window_batches=4,
            use_confidence_channel=False,
        )
        assert not learner.use_confidence_channel
        assert learner.ensemble.long_levels[0].window_batches == 4
