"""Tests for stream preprocessing (repro.data.quality)."""

import numpy as np
import pytest

from repro.data import (
    Batch,
    MissingValueRepair,
    StreamingStandardScaler,
)


class TestStreamingStandardScaler:
    def test_incremental_matches_batch_statistics(self, rng):
        data = rng.normal(loc=3.0, scale=2.0, size=(500, 4))
        scaler = StreamingStandardScaler()
        for start in range(0, 500, 64):
            scaler.partial_fit(data[start:start + 64])
        np.testing.assert_allclose(scaler.mean(), data.mean(axis=0),
                                   atol=1e-9)
        np.testing.assert_allclose(scaler.std(), data.std(axis=0),
                                   atol=1e-4)

    def test_transform_standardizes(self, rng):
        data = rng.normal(loc=-5.0, scale=7.0, size=(1000, 3))
        scaler = StreamingStandardScaler().partial_fit(data)
        scaled = scaler.transform(data)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-3)

    def test_unfitted_transform_is_identity(self, rng):
        x = rng.normal(size=(5, 3))
        np.testing.assert_array_equal(
            StreamingStandardScaler().transform(x), x
        )

    def test_constant_feature_safe(self):
        x = np.ones((50, 2))
        scaler = StreamingStandardScaler().partial_fit(x)
        scaled = scaler.transform(x)
        assert np.isfinite(scaled).all()

    def test_prequential_safe_ordering(self, rng):
        """The batch transform must use only PAST statistics."""
        scaler = StreamingStandardScaler()
        first = Batch(rng.normal(loc=100.0, size=(64, 2)),
                      np.zeros(64), index=0)
        out = scaler(first)
        # No history existed: the first batch passes through unscaled.
        np.testing.assert_array_equal(out.x, first.x)
        second = Batch(rng.normal(loc=100.0, size=(64, 2)),
                       np.zeros(64), index=1)
        out2 = scaler(second)
        # Now scaled by the first batch's statistics: roughly centered.
        assert abs(out2.x.mean()) < 2.0

    def test_decay_tracks_drifting_range(self, rng):
        adaptive = StreamingStandardScaler(decay=0.5)
        sticky = StreamingStandardScaler(decay=1.0)
        for scaler in (adaptive, sticky):
            for _ in range(10):
                scaler.partial_fit(rng.normal(loc=0.0, size=(128, 1)))
            for _ in range(10):
                scaler.partial_fit(rng.normal(loc=50.0, size=(128, 1)))
        assert adaptive.mean()[0] > sticky.mean()[0]
        assert adaptive.mean()[0] > 45.0

    def test_stream_map_integration(self, rng):
        from repro.data import ElectricitySimulator
        scaler = StreamingStandardScaler()
        stream = ElectricitySimulator(seed=0).stream(8, 64).map(scaler)
        batches = stream.materialize()
        assert len(batches) == 8
        late = np.concatenate([b.x for b in batches[4:]])
        assert abs(late.mean()) < 1.5  # roughly standardized by then

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingStandardScaler(decay=0.0)
        with pytest.raises(ValueError):
            StreamingStandardScaler().partial_fit(np.zeros((0, 3)))
        scaler = StreamingStandardScaler().partial_fit(np.zeros((4, 3)))
        with pytest.raises(ValueError):
            scaler.partial_fit(np.zeros((4, 5)))
        with pytest.raises(RuntimeError):
            StreamingStandardScaler().mean()


class TestMissingValueRepair:
    def test_repairs_nan_with_running_mean(self, rng):
        repair = MissingValueRepair()
        repair.repair(np.full((10, 2), 5.0))
        dirty = np.full((4, 2), 7.0)
        dirty[1, 0] = np.nan
        dirty[2, 1] = np.inf
        fixed = repair.repair(dirty)
        assert np.isfinite(fixed).all()
        assert fixed[1, 0] == pytest.approx(5.0)  # running mean
        assert repair.repaired_cells == 2

    def test_first_batch_fallback_zero(self):
        repair = MissingValueRepair()
        dirty = np.array([[np.nan, 1.0], [2.0, 3.0]])
        fixed = repair.repair(dirty)
        assert fixed[0, 0] == 0.0

    def test_builds_valid_batch(self, rng):
        repair = MissingValueRepair()
        dirty = rng.normal(size=(8, 3))
        dirty[0, 0] = np.nan
        batch = repair(dirty, np.zeros(8), index=3)
        assert isinstance(batch, Batch)
        assert batch.index == 3
        assert np.isfinite(batch.x).all()

    def test_rejects_prebuilt_batch(self, rng):
        repair = MissingValueRepair()
        batch = Batch(rng.normal(size=(4, 2)), np.zeros(4), index=0)
        with pytest.raises(TypeError):
            repair(batch)

    def test_statistics_ignore_injected_values_drift(self, rng):
        """A burst of NaN cells must not drag the running mean to the
        fill value's bias."""
        repair = MissingValueRepair()
        repair.repair(np.full((100, 1), 10.0))
        burst = np.full((100, 1), np.nan)
        repair.repair(burst)
        # Mean stays at 10 (the repaired cells were filled WITH 10).
        assert repair._mean[0] == pytest.approx(10.0)

    def test_learner_end_to_end_with_dirty_stream(self, rng):
        """Dirty arrays -> repair -> Learner, no crashes."""
        from repro.core import Learner
        from repro.models import StreamingLR
        repair = MissingValueRepair()
        learner = Learner(
            lambda: StreamingLR(num_features=4, num_classes=2, lr=0.3,
                                seed=0),
            window_batches=4,
        )
        for index in range(10):
            x = rng.normal(size=(64, 4))
            x[rng.random(x.shape) < 0.02] = np.nan
            y = (np.nan_to_num(x[:, 0]) > 0).astype(int)
            report = learner.process(repair(x, y, index=index))
            assert report.accuracy is not None


class TestEmptyBatches:
    """Zero-row inputs must not poison running statistics (regression)."""

    def test_repair_empty_batch_keeps_statistics_clean(self):
        repair = MissingValueRepair()
        repair.repair(np.array([[1.0, 3.0], [3.0, 5.0]]))
        out = repair.repair(np.empty((0, 2)))
        assert out.shape == (0, 2)
        # The running mean must still be the first batch's column means —
        # pre-fix, the empty batch folded a NaN mean in and every later
        # repair filled missing cells with NaN.
        fixed = repair.repair(np.array([[np.nan, np.nan]]))
        np.testing.assert_allclose(fixed, [[2.0, 4.0]])

    def test_repair_empty_first_batch_is_a_noop(self):
        repair = MissingValueRepair()
        out = repair.repair(np.empty((0, 3)))
        assert out.shape == (0, 3)
        fixed = repair.repair(np.array([[np.nan, 1.0, 2.0]]))
        assert np.isfinite(fixed).all()

    def test_scaler_stream_transform_skips_empty_batch(self):
        import copy
        scaler = StreamingStandardScaler()
        template = Batch(np.array([[2.0]]), None, index=0)
        empty = copy.copy(template)  # bypasses Batch's empty-batch check
        empty.x = np.empty((0, 1))
        out = scaler(empty)
        assert len(out.x) == 0
        assert not scaler.fitted  # statistics untouched
