"""Tests for stream abstractions (repro.data.stream)."""

import numpy as np
import pytest

from repro.data import Batch, DataStream, Pattern, batches_from_arrays


def make_batch(n=10, d=3, index=0, labeled=True, pattern=None):
    x = np.arange(n * d, dtype=float).reshape(n, d)
    y = np.arange(n) % 2 if labeled else None
    return Batch(x, y, index=index, pattern=pattern)


class TestBatch:
    def test_basic_properties(self):
        batch = make_batch(n=8, d=4)
        assert len(batch) == 8
        assert batch.num_features == 4
        assert batch.labeled

    def test_labels_coerced_to_int64(self):
        batch = Batch(np.zeros((3, 2)), [0.0, 1.0, 0.0], index=0)
        assert batch.y.dtype == np.int64

    def test_label_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Batch(np.zeros((3, 2)), [0, 1], index=0)

    def test_unlabeled_batch(self):
        batch = make_batch(labeled=False)
        assert not batch.labeled
        assert batch.y is None

    def test_without_labels(self):
        batch = make_batch()
        stripped = batch.without_labels()
        assert not stripped.labeled
        assert batch.labeled  # original untouched
        np.testing.assert_array_equal(stripped.x, batch.x)

    def test_flat_x_flattens_images(self):
        batch = Batch(np.zeros((4, 2, 3, 3)), np.zeros(4), index=0)
        assert batch.flat_x().shape == (4, 18)
        assert batch.num_features == 18

    def test_subset(self):
        batch = make_batch(n=6)
        sub = batch.subset(np.array([0, 2, 4]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.y, batch.y[[0, 2, 4]])

    def test_pattern_annotation(self):
        batch = make_batch(pattern=Pattern.SUDDEN)
        assert batch.pattern == "sudden"

    def test_pattern_constants(self):
        assert set(Pattern.ALL) == {"slight", "sudden", "reoccurring"}

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Batch(np.zeros((0, 3)), None, index=0)

    def test_nan_features_rejected(self):
        x = np.ones((4, 2))
        x[1, 1] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            Batch(x, np.zeros(4), index=0)

    def test_inf_features_rejected(self):
        x = np.ones((4, 2))
        x[0, 0] = np.inf
        with pytest.raises(ValueError, match="NaN/inf"):
            Batch(x, np.zeros(4), index=0)


class TestDataStream:
    def _stream(self, count=5):
        return DataStream(
            (make_batch(index=i) for i in range(count)),
            num_features=3, num_classes=2, name="test",
        )

    def test_iteration(self):
        batches = list(self._stream(4))
        assert [b.index for b in batches] == [0, 1, 2, 3]

    def test_take_limits(self):
        taken = self._stream(10).take(3).materialize()
        assert len(taken) == 3

    def test_take_preserves_metadata(self):
        stream = self._stream().take(2)
        assert stream.num_features == 3
        assert stream.num_classes == 2
        assert stream.name == "test"

    def test_map_transforms_lazily(self):
        doubled = self._stream(3).map(
            lambda b: Batch(b.x * 2, b.y, index=b.index)
        )
        first = next(iter(doubled))
        np.testing.assert_array_equal(first.x, make_batch().x * 2)

    def test_materialize_with_count(self):
        assert len(self._stream(10).materialize(4)) == 4

    def test_single_pass_semantics(self):
        stream = self._stream(3)
        list(stream)
        assert list(stream) == []

    def test_next_protocol(self):
        stream = self._stream(2)
        assert next(stream).index == 0
        assert next(stream).index == 1
        with pytest.raises(StopIteration):
            next(stream)


class TestBatchesFromArrays:
    def test_cuts_consecutive_batches(self):
        x = np.arange(20.0).reshape(10, 2)
        y = np.arange(10) % 2
        batches = list(batches_from_arrays(x, y, batch_size=3))
        assert len(batches) == 3  # drop_last=True drops the remainder
        np.testing.assert_array_equal(batches[1].x, x[3:6])

    def test_keep_last_partial(self):
        x = np.zeros((10, 2))
        y = np.zeros(10)
        batches = list(batches_from_arrays(x, y, batch_size=3,
                                           drop_last=False))
        assert len(batches) == 4
        assert len(batches[-1]) == 1

    def test_patterns_assigned(self):
        x = np.zeros((6, 2))
        y = np.zeros(6)
        batches = list(batches_from_arrays(
            x, y, batch_size=2, patterns=[None, "sudden", "slight"]
        ))
        assert [b.pattern for b in batches] == [None, "sudden", "slight"]

    def test_validation(self):
        with pytest.raises(ValueError):
            list(batches_from_arrays(np.zeros((4, 2)), np.zeros(3), 2))
        with pytest.raises(ValueError):
            list(batches_from_arrays(np.zeros((4, 2)), np.zeros(4), 0))
