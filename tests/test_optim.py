"""Tests for optimizers (repro.nn.optim)."""

import numpy as np
import pytest

from repro import nn
from repro.nn.optim import FOBOS, RDA, Adam, SGD, _soft_threshold
from repro.perf.config import optimizations_disabled


def quadratic_param(start=5.0):
    """A single scalar parameter for optimizing f(w) = w^2 / 2."""
    return nn.Parameter(np.array([start]))


def quad_grad(param):
    param.grad = param.data.copy()  # d/dw (w^2/2) = w


class TestSGD:
    def test_vanilla_step(self):
        p = quadratic_param(4.0)
        opt = SGD([p], lr=0.5)
        quad_grad(p)
        opt.step()
        assert p.data[0] == pytest.approx(2.0)

    def test_converges_on_quadratic(self):
        p = quadratic_param(10.0)
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            quad_grad(p)
            opt.step()
        assert abs(p.data[0]) < 1e-3

    def test_momentum_accelerates(self):
        plain = quadratic_param(10.0)
        heavy = quadratic_param(10.0)
        opt_plain = SGD([plain], lr=0.01)
        opt_heavy = SGD([heavy], lr=0.01, momentum=0.9)
        for _ in range(20):
            quad_grad(plain); opt_plain.step()
            quad_grad(heavy); opt_heavy.step()
        assert abs(heavy.data[0]) < abs(plain.data[0])

    def test_weight_decay_shrinks(self):
        p = nn.Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        p.grad = np.array([0.0])
        opt.step()
        assert p.data[0] == pytest.approx(0.9)

    def test_skips_parameters_without_grad(self):
        p = quadratic_param(1.0)
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad set
        assert p.data[0] == 1.0

    def test_zero_grad(self):
        p = quadratic_param()
        quad_grad(p)
        SGD([p], lr=0.1).zero_grad()
        assert p.grad is None

    def test_validation(self):
        p = quadratic_param()
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_first_step_size_is_lr(self):
        # With bias correction the first Adam step is ~lr regardless of
        # gradient scale.
        p = nn.Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.1)
        p.grad = np.array([1000.0])
        opt.step()
        assert p.data[0] == pytest.approx(0.9, abs=1e-6)

    def test_converges_on_quadratic(self):
        p = quadratic_param(10.0)
        opt = Adam([p], lr=0.5)
        for _ in range(200):
            quad_grad(p)
            opt.step()
        assert abs(p.data[0]) < 1e-2

    def test_weight_decay(self):
        p = nn.Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        p.grad = np.array([0.0])
        opt.step()
        assert p.data[0] < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Adam([quadratic_param()], lr=-1.0)


class TestSoftThreshold:
    def test_shrinks_toward_zero(self):
        values = np.array([-2.0, -0.5, 0.0, 0.5, 2.0])
        out = _soft_threshold(values, 1.0)
        np.testing.assert_allclose(out, [-1.0, 0.0, 0.0, 0.0, 1.0])

    def test_zero_threshold_is_identity(self):
        values = np.array([1.0, -3.0])
        np.testing.assert_allclose(_soft_threshold(values, 0.0), values)


class TestFOBOS:
    def test_produces_sparsity(self):
        p = nn.Parameter(np.array([0.001, 5.0]))
        opt = FOBOS([p], lr=0.1, l1=0.5)
        p.grad = np.array([0.0, 0.0])
        opt.step()
        assert p.data[0] == 0.0       # tiny weight soft-thresholded away
        assert p.data[1] != 0.0

    def test_step_size_decays(self):
        p = nn.Parameter(np.array([10.0]))
        opt = FOBOS([p], lr=1.0, l1=0.0)
        p.grad = np.array([1.0])
        opt.step()
        first_move = 10.0 - p.data[0]
        before = p.data[0]
        p.grad = np.array([1.0])
        opt.step()
        second_move = before - p.data[0]
        assert second_move < first_move

    def test_converges_on_quadratic(self):
        p = quadratic_param(5.0)
        opt = FOBOS([p], lr=0.5, l1=1e-6)
        for _ in range(300):
            quad_grad(p)
            opt.step()
        assert abs(p.data[0]) < 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            FOBOS([quadratic_param()], lr=0.0)
        with pytest.raises(ValueError):
            FOBOS([quadratic_param()], lr=0.1, l1=-1.0)


class TestFlatStateRecovery:
    """The preflattened fast path must survive checkpoint restores.

    Regression: a ``.data`` replacement that no longer fit its stale flat
    view (a shape-changing restore) made ``_flat_state`` return ``None``
    on every later step, silently demoting the optimizer to the legacy
    loop for its remaining lifetime.
    """

    def test_fast_path_reengages_after_shape_changing_restore(self):
        p = nn.Parameter(np.zeros(4))
        opt = SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.ones(4)
        opt.step()
        assert opt._flat is not None  # fast path engaged
        # A checkpoint restore swaps in a differently-shaped buffer
        # (e.g. the model was rebuilt with another width).
        p.data = np.zeros(6)
        p.grad = np.ones(6)
        opt.step()
        assert p.data.shape == (6,)
        assert opt._flat is not None          # re-engaged, not disabled
        assert p.data is opt._flat.views[0]   # re-adopted into the buffer

    def test_post_restore_sgd_steps_match_legacy_loop(self):
        rng = np.random.default_rng(0)
        p = nn.Parameter(rng.normal(size=(3, 4)))
        opt = SGD([p], lr=0.05, momentum=0.9)
        for _ in range(3):
            p.grad = rng.normal(size=(3, 4))
            opt.step()
        restored = rng.normal(size=(2, 4))
        grads = [rng.normal(size=(2, 4)) for _ in range(4)]
        p.data = restored.copy()
        for grad in grads:
            p.grad = grad.copy()
            opt.step()
        reference = nn.Parameter(restored.copy())
        ref_opt = SGD([reference], lr=0.05, momentum=0.9)
        with optimizations_disabled():
            for grad in grads:
                reference.grad = grad.copy()
                ref_opt.step()
        np.testing.assert_array_equal(p.data, reference.data)

    def test_adam_moments_reset_with_restored_shape(self):
        rng = np.random.default_rng(1)
        p = nn.Parameter(rng.normal(size=(4,)))
        opt = Adam([p], lr=0.01)
        for _ in range(2):
            p.grad = rng.normal(size=(4,))
            opt.step()
        restored = rng.normal(size=(6,))
        grads = [rng.normal(size=(6,)) for _ in range(3)]
        p.data = restored.copy()
        for grad in grads:
            p.grad = grad.copy()
            opt.step()
        assert opt._flat is not None
        # The moments match a fresh Adam at the same step count run over
        # the post-restore gradients (stale-shape moments were reset, and
        # bias correction follows the surviving _step_count).
        reference = nn.Parameter(restored.copy())
        ref_opt = Adam([reference], lr=0.01)
        ref_opt._step_count = 2
        with optimizations_disabled():
            for grad in grads:
                reference.grad = grad.copy()
                ref_opt.step()
        np.testing.assert_array_equal(p.data, reference.data)

    def test_same_shape_restore_keeps_fast_path_and_values(self):
        p = nn.Parameter(np.full(5, 2.0))
        opt = SGD([p], lr=0.5)
        p.grad = np.ones(5)
        opt.step()
        view = opt._flat.views[0]
        p.data = np.full(5, 7.0)  # same-shape restore
        p.grad = np.ones(5)
        opt.step()
        assert p.data is view
        np.testing.assert_array_equal(p.data, np.full(5, 6.5))


class TestRDA:
    def test_weights_driven_by_average_gradient(self):
        p = nn.Parameter(np.array([0.0]))
        opt = RDA([p], l1=0.0, gamma=1.0)
        p.grad = np.array([1.0])
        opt.step()
        # w_1 = -sqrt(1)/1 * 1 = -1
        assert p.data[0] == pytest.approx(-1.0)

    def test_l1_zeroes_small_average_gradients(self):
        p = nn.Parameter(np.array([0.0]))
        opt = RDA([p], l1=2.0)
        p.grad = np.array([1.0])  # |avg| = 1 < 2 -> w stays 0
        opt.step()
        assert p.data[0] == 0.0

    def test_converges_on_quadratic(self):
        p = quadratic_param(5.0)
        opt = RDA([p], l1=0.0, gamma=2.0)
        for _ in range(300):
            quad_grad(p)
            opt.step()
        assert abs(p.data[0]) < 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            RDA([quadratic_param()], l1=-0.1)
        with pytest.raises(ValueError):
            RDA([quadratic_param()], gamma=0.0)
