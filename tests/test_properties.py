"""Property-based invariants across the core data structures (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    AdaptiveStreamingWindow,
    ExperienceBuffer,
    KnowledgeStore,
)
from repro.metrics import class_recalls, macro_f1
from repro.models import KMeans
from repro.nn import Tensor
from repro.nn import functional as F


def finite_matrix(rows=st.integers(2, 12), cols=st.integers(1, 6)):
    return st.tuples(rows, cols).flatmap(
        lambda shape: hnp.arrays(
            np.float64, shape,
            elements=st.floats(-50, 50, allow_nan=False),
        )
    )


class TestASWInvariants:
    @given(st.lists(st.floats(-5, 5, allow_nan=False), min_size=1,
                    max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_weights_bounded_and_disorder_normalized(self, centers):
        window = AdaptiveStreamingWindow(max_batches=100, base_decay=0.2,
                                         min_weight=0.01, seed=0)
        rng = np.random.default_rng(0)
        for center in centers:
            x = rng.normal(size=(4, 3)) + center
            window.add(x, np.zeros(4), x.mean(axis=0))
            weights = window.entry_weights()
            assert (weights > 0).all()
            assert (weights <= 1.0).all()
            assert 0.0 <= window.disorder <= 1.0
            assert window.effective_items <= 4 * len(centers) + 1e-9

    @given(st.lists(st.floats(-5, 5, allow_nan=False), min_size=1,
                    max_size=10))
    @settings(max_examples=25, deadline=None)
    def test_training_data_never_exceeds_window_rows(self, centers):
        window = AdaptiveStreamingWindow(max_batches=100, base_decay=0.3,
                                         seed=0)
        rng = np.random.default_rng(0)
        total = 0
        for center in centers:
            x = rng.normal(size=(6, 2)) + center
            window.add(x, np.zeros(6), x.mean(axis=0))
            total += 6
        x_out, y_out = window.training_data()
        assert len(x_out) == len(y_out)
        assert 1 <= len(x_out) <= total


class TestExperienceBufferInvariants:
    @given(st.lists(st.integers(1, 40), min_size=1, max_size=20),
           st.integers(5, 60), st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_size_bounded_by_capacity(self, batch_sizes, capacity,
                                      expiration):
        buffer = ExperienceBuffer(capacity=capacity, per_batch=10,
                                  expiration=expiration)
        rng = np.random.default_rng(0)
        for size in batch_sizes:
            buffer.add(rng.normal(size=(size, 2)),
                       rng.integers(0, 2, size=size))
            assert len(buffer) <= capacity + 10  # one batch of slack max
        x, y = buffer.recent(5)
        assert len(x) == len(y) <= 5


class TestKnowledgeStoreInvariants:
    @given(st.integers(1, 30), st.integers(1, 15))
    @settings(max_examples=30, deadline=None)
    def test_len_bounded_by_capacity(self, inserts, capacity):
        store = KnowledgeStore(capacity=capacity)
        for index in range(inserts):
            store.preserve(np.zeros(2), {"w": np.zeros(3)}, "long",
                           0.5, index)
        assert len(store) <= capacity
        assert store.preserved_total == inserts
        # Whatever remains is the newest suffix.
        indices = [entry.batch_index for entry in store.entries]
        assert indices == sorted(indices)
        if indices:
            assert indices[-1] == inserts - 1


class TestSoftmaxInvariants:
    @given(finite_matrix())
    @settings(max_examples=40, deadline=None)
    def test_softmax_simplex(self, logits):
        probs = F.softmax(Tensor(logits)).data
        assert (probs >= 0).all()
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-9)

    @given(finite_matrix())
    @settings(max_examples=40, deadline=None)
    def test_cross_entropy_nonnegative(self, logits):
        labels = np.zeros(len(logits), dtype=np.int64)
        loss = F.cross_entropy(Tensor(logits), labels).item()
        assert loss >= -1e-12


class TestKMeansInvariants:
    @given(finite_matrix(rows=st.integers(6, 30), cols=st.integers(1, 4)),
           st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_assignments_in_range(self, x, k):
        kmeans = KMeans(k, seed=0)
        labels = kmeans.fit_predict(x)
        assert labels.min() >= 0
        assert labels.max() < k
        assert len(labels) == len(x)

    @given(finite_matrix(rows=st.integers(8, 30), cols=st.integers(2, 3)))
    @settings(max_examples=20, deadline=None)
    def test_more_clusters_never_increase_inertia(self, x):
        inertia_1 = KMeans(1, seed=0).fit(x).inertia(x)
        inertia_3 = KMeans(3, seed=0).fit(x).inertia(x)
        assert inertia_3 <= inertia_1 + 1e-6


class TestMetricInvariants:
    @given(st.integers(2, 6), st.integers(10, 60))
    @settings(max_examples=30, deadline=None)
    def test_perfect_predictions_score_one(self, num_classes, n):
        rng = np.random.default_rng(0)
        y = rng.integers(0, num_classes, size=n)
        recalls = class_recalls(y, y, num_classes)
        present = ~np.isnan(recalls)
        np.testing.assert_allclose(recalls[present], 1.0)
        assert macro_f1(y, y, num_classes) == pytest.approx(1.0)

    @given(st.integers(2, 5), st.integers(20, 80))
    @settings(max_examples=30, deadline=None)
    def test_macro_f1_bounded(self, num_classes, n):
        rng = np.random.default_rng(1)
        y_true = rng.integers(0, num_classes, size=n)
        y_pred = rng.integers(0, num_classes, size=n)
        assert 0.0 <= macro_f1(y_true, y_pred, num_classes) <= 1.0

    def test_class_recalls_nan_for_absent_class(self):
        recalls = class_recalls([0, 0, 1], [0, 0, 1], 3)
        assert np.isnan(recalls[2])
        assert recalls[0] == 1.0

    def test_minority_class_visible(self):
        # 90% majority predicted perfectly, minority never predicted:
        # accuracy is high but the minority recall exposes the failure.
        y_true = np.array([0] * 90 + [1] * 10)
        y_pred = np.zeros(100, dtype=int)
        recalls = class_recalls(y_true, y_pred, 2)
        assert recalls[0] == 1.0
        assert recalls[1] == 0.0
        assert macro_f1(y_true, y_pred, 2) < 0.5
