"""Tests for the SVG chart writer (repro.eval.plots)."""

import numpy as np
import pytest

from repro.eval import line_chart_svg, save_svg, shift_graph_svg


class TestLineChart:
    def test_valid_svg_document(self):
        svg = line_chart_svg({"a": [0.1, 0.5, 0.9]}, title="Test")
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "Test" in svg
        assert "polyline" in svg

    def test_multiple_series_get_distinct_colors(self):
        svg = line_chart_svg({"one": [0.1, 0.2], "two": [0.3, 0.4]})
        assert svg.count("<polyline") == 2
        assert "#2563eb" in svg and "#dc2626" in svg

    def test_dashed_series(self):
        svg = line_chart_svg({"baseline": [0.1, 0.2], "ours": [0.3, 0.4]},
                             dashed={"baseline"})
        assert "stroke-dasharray" in svg

    def test_legend_labels_present(self):
        svg = line_chart_svg({"freewayml": [0.5, 0.6],
                              "plain": [0.4, 0.5]})
        assert "freewayml" in svg
        assert "plain" in svg

    def test_different_lengths_allowed(self):
        svg = line_chart_svg({"long": list(np.linspace(0, 1, 50)),
                              "short": [0.5, 0.5, 0.5]})
        assert svg.count("<polyline") == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart_svg({})
        with pytest.raises(ValueError):
            line_chart_svg({"a": [0.5]})


class TestShiftGraph:
    def test_renders_trace(self, rng):
        points = rng.normal(size=(20, 2))
        svg = shift_graph_svg(points, title="shift")
        assert svg.count("<circle") == 20
        assert "start" in svg and "end" in svg

    def test_accuracy_coloring(self, rng):
        points = rng.normal(size=(4, 2))
        svg = shift_graph_svg(points, accuracies=[1.0, 0.0, 0.5, None])
        assert "rgb(0,180,60)" in svg    # perfect accuracy -> green
        assert "rgb(220,0,60)" in svg    # zero accuracy -> red
        assert "#2563eb" in svg          # un-annotated point -> default

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            shift_graph_svg(rng.normal(size=(1, 2)))
        with pytest.raises(ValueError):
            shift_graph_svg(rng.normal(size=(5, 3)))


class TestSaveSvg:
    def test_writes_file_with_parents(self, tmp_path):
        svg = line_chart_svg({"a": [0.1, 0.9]})
        path = save_svg(svg, tmp_path / "charts" / "out.svg")
        assert path.exists()
        assert path.read_text() == svg

    def test_end_to_end_with_shift_graph(self, tmp_path, rng):
        """Realistic artifact: Figure-2-style graph from a real stream."""
        from repro.data import ElectricitySimulator
        from repro.shift import ShiftGraph
        graph = ShiftGraph(warmup_points=64)
        for batch in ElectricitySimulator(seed=0).stream(30, 64):
            graph.observe(batch.x, accuracy=0.8)
        svg = shift_graph_svg(graph.points, accuracies=graph.accuracies,
                              title="electricity")
        path = save_svg(svg, tmp_path / "fig2.svg")
        assert path.stat().st_size > 1000
