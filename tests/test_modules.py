"""Tests for the module system (repro.nn.modules)."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F


def make_mlp(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Linear(4, 8, rng=rng), nn.ReLU(), nn.Linear(8, 3, rng=rng)
    )


class TestParameterRegistration:
    def test_linear_registers_weight_and_bias(self):
        layer = nn.Linear(3, 2)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_bias_false_unregisters(self):
        layer = nn.Linear(3, 2, bias=False)
        assert set(dict(layer.named_parameters())) == {"weight"}
        assert layer.bias is None

    def test_nested_names_are_dotted(self):
        model = make_mlp()
        names = list(dict(model.named_parameters()))
        assert "layer0.weight" in names
        assert "layer2.bias" in names

    def test_reassigning_to_none_unregisters(self):
        layer = nn.Linear(3, 2)
        layer.bias = None
        assert set(dict(layer.named_parameters())) == {"weight"}

    def test_num_parameters(self):
        layer = nn.Linear(3, 2)
        assert layer.num_parameters() == 3 * 2 + 2

    def test_modules_iterates_tree(self):
        model = make_mlp()
        kinds = [type(m).__name__ for m in model.modules()]
        assert kinds.count("Linear") == 2
        assert "Sequential" in kinds


class TestStateDict:
    def test_round_trip(self):
        a = make_mlp(seed=1)
        b = make_mlp(seed=2)
        b.load_state_dict(a.state_dict())
        for (name_a, pa), (name_b, pb) in zip(a.named_parameters(),
                                              b.named_parameters()):
            assert name_a == name_b
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_state_dict_is_a_copy(self):
        model = make_mlp()
        state = model.state_dict()
        state["layer0.weight"][:] = 0.0
        assert not (dict(model.named_parameters())["layer0.weight"].data == 0).all()

    def test_missing_key_raises(self):
        model = make_mlp()
        state = model.state_dict()
        del state["layer0.weight"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_unexpected_key_raises(self):
        model = make_mlp()
        state = model.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = make_mlp()
        state = model.state_dict()
        state["layer0.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestTrainEval:
    def test_train_flag_propagates(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_dropout_noop_in_eval(self):
        drop = nn.Dropout(0.9, rng=np.random.default_rng(0))
        drop.eval()
        x = nn.Tensor(np.ones((5, 5)))
        np.testing.assert_allclose(drop(x).data, 1.0)

    def test_dropout_active_in_train(self):
        drop = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = nn.Tensor(np.ones((50, 50)))
        out = drop(x).data
        assert (out == 0).any()

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)

    def test_zero_grad_clears_all(self):
        model = make_mlp()
        out = model(nn.Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestLayers:
    def test_forward_is_abstract(self):
        with pytest.raises(NotImplementedError):
            nn.Module().forward()

    def test_sequential_order_and_indexing(self):
        model = make_mlp()
        assert len(model) == 3
        assert isinstance(model[1], nn.ReLU)
        assert [type(m).__name__ for m in model] == [
            "Linear", "ReLU", "Linear"
        ]

    def test_activations(self):
        x = nn.Tensor([-1.0, 1.0])
        np.testing.assert_allclose(nn.ReLU()(x).data, [0.0, 1.0])
        np.testing.assert_allclose(nn.Tanh()(x).data, np.tanh([-1.0, 1.0]))
        np.testing.assert_allclose(
            nn.Sigmoid()(x).data, 1 / (1 + np.exp([1.0, -1.0]))
        )

    def test_flatten(self):
        x = nn.Tensor(np.zeros((2, 3, 4)))
        assert nn.Flatten()(x).shape == (2, 12)

    def test_conv2d_module_shapes(self):
        rng = np.random.default_rng(0)
        conv = nn.Conv2d(3, 8, kernel_size=3, padding=1, rng=rng)
        x = nn.Tensor(rng.normal(size=(2, 3, 6, 6)))
        assert conv(x).shape == (2, 8, 6, 6)
        assert conv.weight.shape == (8, 3, 3, 3)

    def test_conv2d_rectangular_kernel(self):
        conv = nn.Conv2d(1, 4, kernel_size=(1, 3), padding=(0, 1))
        x = nn.Tensor(np.zeros((2, 1, 1, 10)))
        assert conv(x).shape == (2, 4, 1, 10)

    def test_maxpool_module(self):
        pool = nn.MaxPool2d(2)
        x = nn.Tensor(np.zeros((1, 1, 4, 4)))
        assert pool(x).shape == (1, 1, 2, 2)

    def test_repr_strings(self):
        assert "Linear" in repr(nn.Linear(2, 3))
        assert "Conv2d" in repr(nn.Conv2d(1, 2, 3))
        assert "MaxPool2d" in repr(nn.MaxPool2d(2))

    def test_seeded_init_is_deterministic(self):
        a = nn.Linear(4, 4, rng=np.random.default_rng(7))
        b = nn.Linear(4, 4, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)
        np.testing.assert_array_equal(a.bias.data, b.bias.data)


class TestEndToEndTraining:
    def test_mlp_fits_blobs(self, blob_data):
        x, y = blob_data
        model = make_mlp(seed=0)
        optimizer = nn.SGD(model.parameters(), lr=0.2)
        for _ in range(60):
            optimizer.zero_grad()
            loss = F.cross_entropy(model(nn.Tensor(x)), y)
            loss.backward()
            optimizer.step()
        predictions = model(nn.Tensor(x)).data.argmax(axis=1)
        assert (predictions == y).mean() > 0.95
