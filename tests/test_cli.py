"""Tests for the command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.framework == "freewayml"
        assert args.dataset == "electricity"
        assert args.model == "mlp"

    def test_framework_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--framework", "bogus"])

    def test_model_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--model", "bogus"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("hyperplane", "sea", "airlines", "covertype",
                     "nsl-kdd", "electricity", "animals", "flowers"):
            assert name in out

    def test_run_freewayml(self, capsys):
        code = main(["run", "--dataset", "electricity",
                     "--batches", "10", "--batch-size", "64"])
        assert code == 0
        out = capsys.readouterr().out
        assert "G_acc" in out
        assert "freewayml" in out

    def test_run_baseline(self, capsys):
        code = main(["run", "--framework", "river", "--dataset", "sea",
                     "--batches", "8", "--batch-size", "64"])
        assert code == 0
        assert "river" in capsys.readouterr().out

    def test_run_unknown_dataset_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "--dataset", "bogus", "--batches", "4"])

    def test_compare(self, capsys):
        code = main(["compare", "--dataset", "electricity",
                     "--model", "lr", "--batches", "8",
                     "--batch-size", "64"])
        assert code == 0
        out = capsys.readouterr().out
        assert "flink-ml" in out
        assert "freewayml" in out
        assert "*" in out  # best framework starred

    def test_run_on_csv(self, tmp_path, capsys, rng):
        x = rng.normal(size=(300, 3))
        y = (x[:, 0] > 0).astype(int)
        lines = [",".join(f"{v:.4f}" for v in row) + f",{label}"
                 for row, label in zip(x, y)]
        path = tmp_path / "mine.csv"
        path.write_text("\n".join(lines) + "\n")
        code = main(["run", "--csv", str(path), "--model", "lr",
                     "--batches", "5", "--batch-size", "50"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mine" in out
        assert "G_acc" in out
