"""Tests for metrics and prequential evaluation (repro.metrics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Learner
from repro.data import HyperplaneGenerator
from repro.metrics import (
    AccuracyTracker,
    batch_accuracy,
    evaluate_learner,
    evaluate_model,
    global_accuracy,
    measure_latency,
    measure_throughput,
    stability_index,
)
from repro.models import StreamingLR


class TestBatchAccuracy:
    def test_perfect(self):
        assert batch_accuracy([1, 0, 1], [1, 0, 1]) == 1.0

    def test_half(self):
        assert batch_accuracy([1, 0], [1, 1]) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            batch_accuracy([], [])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            batch_accuracy([1, 2], [1])


class TestGlobalAccuracyAndSI:
    def test_g_acc_is_mean(self):
        assert global_accuracy([0.5, 0.7, 0.9]) == pytest.approx(0.7)

    def test_si_one_for_constant_series(self):
        assert stability_index([0.8, 0.8, 0.8]) == pytest.approx(1.0)

    def test_si_decreases_with_fluctuation(self):
        steady = stability_index([0.8, 0.81, 0.79, 0.8])
        jumpy = stability_index([0.99, 0.2, 0.99, 0.2])
        assert steady > jumpy

    def test_si_matches_eq16(self):
        series = np.array([0.9, 0.5, 0.7])
        expected = np.exp(-series.std() / series.mean())
        assert stability_index(series) == pytest.approx(expected)

    def test_si_zero_mean(self):
        assert stability_index([0.0, 0.0]) == 0.0

    @given(st.lists(st.floats(0.01, 1.0), min_size=2, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_si_bounded(self, series):
        si = stability_index(series)
        assert 0.0 < si <= 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            global_accuracy([])
        with pytest.raises(ValueError):
            stability_index([])


class TestAccuracyTracker:
    def test_observe_and_summary(self):
        tracker = AccuracyTracker()
        tracker.observe([1, 1], [1, 0])
        tracker.observe([1, 1], [1, 1])
        summary = tracker.summary()
        assert summary.g_acc == pytest.approx(0.75)
        assert len(tracker) == 2

    def test_skip_warmup(self):
        tracker = AccuracyTracker()
        for value in [0.1, 0.9, 0.9]:
            tracker.observe_value(value)
        assert tracker.summary(skip=1).g_acc == pytest.approx(0.9)

    def test_observe_value_validation(self):
        with pytest.raises(ValueError):
            AccuracyTracker().observe_value(1.5)


class TestEvaluateModel:
    def test_prequential_result_fields(self):
        generator = HyperplaneGenerator(seed=0)
        model = StreamingLR(num_features=10, num_classes=2, lr=0.5, seed=0)
        result = evaluate_model(model, generator.stream(10, 64))
        assert len(result.accuracies) == 10
        assert 0.0 <= result.g_acc <= 1.0
        assert 0.0 < result.si <= 1.0
        assert result.total_items == 640
        assert result.throughput > 0
        assert len(result.patterns) == 10

    def test_test_then_train_order(self):
        """Accuracy on batch 0 must reflect the UNtrained model."""
        generator = HyperplaneGenerator(seed=0)
        model = StreamingLR(num_features=10, num_classes=2, lr=0.5, seed=0)
        result = evaluate_model(model, generator.stream(20, 128))
        # Untrained accuracy near chance; later much better.
        assert result.accuracies[0] < 0.75
        assert result.accuracies[-5:].mean() > result.accuracies[0]

    def test_accuracy_by_pattern(self):
        generator = HyperplaneGenerator(seed=0)
        model = StreamingLR(num_features=10, num_classes=2, seed=0)
        result = evaluate_model(model, generator.stream(10, 64))
        by_pattern = result.accuracy_by_pattern()
        assert "slight" in by_pattern


class TestEvaluateLearner:
    def test_learner_result(self):
        generator = HyperplaneGenerator(seed=0)
        learner = Learner(
            lambda: StreamingLR(num_features=10, num_classes=2,
                                lr=0.5, seed=0),
            window_batches=4,
        )
        result = evaluate_learner(learner, generator.stream(10, 64))
        assert len(result.accuracies) == 10
        assert result.extras["reports"]
        assert len(result.patterns) == 10


class TestPerfHelpers:
    def test_measure_latency(self):
        batches = list(range(10))
        infer, update = measure_latency(
            lambda b: sum(range(100)), lambda b: sum(range(200)), batches
        )
        assert infer.mean > 0
        assert update.mean > 0
        assert infer.mean_us == pytest.approx(infer.mean * 1e6)
        assert len(infer.samples) == 8  # warmup=2 dropped

    def test_measure_latency_too_few_batches(self):
        with pytest.raises(ValueError):
            measure_latency(lambda b: None, lambda b: None, [1, 2], warmup=2)

    def test_measure_throughput(self):
        batches = [np.zeros(100) for _ in range(10)]
        throughput = measure_throughput(lambda b: b.sum(), batches)
        assert throughput > 0

    def test_measure_throughput_too_few(self):
        with pytest.raises(ValueError):
            measure_throughput(lambda b: None, [np.zeros(2)], warmup=2)
