"""Shared fixtures for the FreewayML reproduction test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """Deterministic RNG for test data."""
    return np.random.default_rng(12345)


@pytest.fixture
def blob_data(rng):
    """Two well-separated Gaussian blobs: (x, y), 200 points, 2 classes."""
    x0 = rng.normal(loc=-2.0, scale=0.5, size=(100, 4))
    x1 = rng.normal(loc=2.0, scale=0.5, size=(100, 4))
    x = np.concatenate([x0, x1])
    y = np.concatenate([np.zeros(100, dtype=np.int64),
                        np.ones(100, dtype=np.int64)])
    order = rng.permutation(200)
    return x[order], y[order]


def numeric_gradient(fn, array, eps=1e-6):
    """Central-difference gradient of scalar fn with respect to array."""
    grad = np.zeros_like(array)
    for index in np.ndindex(array.shape):
        original = array[index]
        array[index] = original + eps
        upper = fn()
        array[index] = original - eps
        lower = fn()
        array[index] = original
        grad[index] = (upper - lower) / (2.0 * eps)
    return grad
