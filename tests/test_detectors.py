"""Tests for the classic drift detectors (repro.baselines.detectors)."""

import numpy as np
import pytest

from repro.baselines import (
    DDMDetector,
    EDDMDetector,
    PageHinkleyDetector,
    RiverBaseline,
)
from repro.models import StreamingMLP


def feed_stable_then_jump(detector, rng, low=0.05, high=0.6,
                          stable=50, jumped=30, weight=100):
    fired_during_stable = False
    for _ in range(stable):
        fired_during_stable |= detector.update(
            np.clip(low + rng.normal(scale=0.01), 0, 1), weight
        )
    fired_after_jump = False
    for _ in range(jumped):
        fired_after_jump |= detector.update(
            np.clip(high + rng.normal(scale=0.01), 0, 1), weight
        )
    return fired_during_stable, fired_after_jump


class TestDDM:
    def test_detects_error_jump(self, rng):
        stable, jumped = feed_stable_then_jump(DDMDetector(), rng)
        assert not stable
        assert jumped

    def test_warning_precedes_drift(self, rng):
        detector = DDMDetector()
        for _ in range(50):
            detector.update(0.05, 100)
        saw_warning = False
        for _ in range(30):
            fired = detector.update(0.3, 100)
            saw_warning |= detector.warning
            if fired:
                break
        assert saw_warning or detector.detections

    def test_resets_after_detection(self, rng):
        detector = DDMDetector()
        feed_stable_then_jump(detector, rng)
        first = detector.detections
        # New stable regime at the higher level: no further detections.
        for _ in range(50):
            detector.update(0.6, 100)
        assert detector.detections == first

    def test_validation(self):
        with pytest.raises(ValueError):
            DDMDetector(warn_level=3.0, drift_level=2.0)
        detector = DDMDetector()
        with pytest.raises(ValueError):
            detector.update(1.5)
        with pytest.raises(ValueError):
            detector.update(0.5, weight=0)


class TestEDDM:
    def test_detects_error_jump(self, rng):
        stable, jumped = feed_stable_then_jump(EDDMDetector(), rng)
        assert not stable
        assert jumped

    def test_validation(self):
        with pytest.raises(ValueError):
            EDDMDetector(alpha=0.5, beta=0.9)
        with pytest.raises(ValueError):
            EDDMDetector().update(-0.1)


class TestPageHinkley:
    def test_detects_upward_change(self, rng):
        detector = PageHinkleyDetector(threshold=0.5)
        stable, jumped = feed_stable_then_jump(detector, rng)
        assert not stable
        assert jumped

    def test_quiet_on_stationary_series(self, rng):
        detector = PageHinkleyDetector(threshold=1.0)
        for _ in range(200):
            detector.update(0.2 + rng.normal(scale=0.01))
        assert detector.detections == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PageHinkleyDetector(threshold=0.0)


class TestRiverWithAlternativeDetectors:
    @pytest.mark.parametrize("detector_factory", [
        DDMDetector, EDDMDetector,
        lambda: PageHinkleyDetector(threshold=0.5),
    ])
    def test_resets_on_concept_flip(self, detector_factory, rng):
        baseline = RiverBaseline(
            lambda: StreamingMLP(num_features=4, num_classes=2,
                                 lr=0.3, seed=0),
            detector=detector_factory(),
        )
        x0 = rng.normal(size=(128, 4))
        y0 = (x0[:, 0] > 0).astype(np.int64)
        for _ in range(30):
            baseline.partial_fit(x0, y0)
        for _ in range(30):
            x = rng.normal(size=(128, 4))
            baseline.partial_fit(x, (x[:, 0] <= 0).astype(np.int64))
        assert baseline.resets >= 1
