"""Tests for the six baseline frameworks (repro.baselines)."""

import numpy as np
import pytest

from repro.baselines import (
    AGEMBaseline,
    AdwinDetector,
    AlinkBaseline,
    BASELINES,
    CamelBaseline,
    FlinkMLBaseline,
    LR_GROUP,
    MLP_GROUP,
    RiverBaseline,
    SparkMLlibBaseline,
    make_baseline,
)
from repro.models import StreamingLR, StreamingMLP


def lr_factory():
    return StreamingLR(num_features=4, num_classes=2, lr=0.3, seed=0)


def mlp_factory():
    return StreamingMLP(num_features=4, num_classes=2, lr=0.3, seed=0)


ALL_FACTORIES = [
    lambda: FlinkMLBaseline(lr_factory),
    lambda: SparkMLlibBaseline(lr_factory),
    lambda: AlinkBaseline(lr_factory),
    lambda: RiverBaseline(mlp_factory),
    lambda: CamelBaseline(mlp_factory),
    lambda: AGEMBaseline(mlp_factory),
]


@pytest.mark.parametrize("make", ALL_FACTORIES)
class TestCommonProtocol:
    def test_learns_separable_data(self, make, blob_data):
        x, y = blob_data
        baseline = make()
        for _ in range(30):
            baseline.partial_fit(x, y)
        assert (baseline.predict(x) == y).mean() > 0.9

    def test_predict_proba_simplex(self, make, rng):
        baseline = make()
        proba = baseline.predict_proba(rng.normal(size=(8, 4)))
        assert proba.shape == (8, 2)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_state_dict_round_trip(self, make, blob_data):
        x, y = blob_data
        baseline = make()
        baseline.partial_fit(x, y)
        state = baseline.state_dict()
        clone = make()
        clone.load_state_dict(state)
        np.testing.assert_allclose(clone.predict_proba(x),
                                   baseline.predict_proba(x))

    def test_clone_fresh(self, make, blob_data):
        x, y = blob_data
        baseline = make()
        baseline.partial_fit(x, y)
        clone = baseline.clone()
        assert type(clone) is type(baseline)


class TestFlinkML:
    def test_zero_delay_trains_immediately(self, blob_data):
        x, y = blob_data
        baseline = FlinkMLBaseline(lr_factory, watermark_delay=0)
        baseline.partial_fit(x, y)
        assert baseline.inner.updates == 1

    def test_watermark_holds_batches(self, blob_data):
        x, y = blob_data
        baseline = FlinkMLBaseline(lr_factory, watermark_delay=2)
        baseline.partial_fit(x, y)
        baseline.partial_fit(x, y)
        assert baseline.inner.updates == 0  # both held
        baseline.partial_fit(x, y)
        assert baseline.inner.updates == 1  # oldest released

    def test_validation(self):
        with pytest.raises(ValueError):
            FlinkMLBaseline(lr_factory, watermark_delay=-1)

    def test_rejects_non_neural_model(self):
        with pytest.raises(TypeError):
            FlinkMLBaseline(lambda: object())


class TestSparkMLlib:
    def test_partition_average_equals_full_gradient(self, blob_data):
        """Averaging shard gradients at fixed parameters equals the full
        batch gradient, so one Spark update == one plain SGD update."""
        x, y = blob_data
        spark = SparkMLlibBaseline(lr_factory, partitions=4)
        plain = lr_factory()
        spark.partial_fit(x, y)
        plain.partial_fit(x, y)
        for pa, pb in zip(spark.inner.module.parameters(),
                          plain.module.parameters()):
            np.testing.assert_allclose(pa.data, pb.data, atol=1e-10)

    def test_more_partitions_than_rows(self, rng):
        spark = SparkMLlibBaseline(lr_factory, partitions=100)
        spark.partial_fit(rng.normal(size=(5, 4)), np.zeros(5))
        assert spark.inner.updates == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SparkMLlibBaseline(lr_factory, partitions=0)


class TestAlink:
    def test_fobos_induces_sparsity(self, blob_data):
        x, y = blob_data
        strong = AlinkBaseline(lr_factory, method="fobos", l1=0.05)
        weak = AlinkBaseline(lr_factory, method="fobos", l1=0.0)
        for _ in range(20):
            strong.partial_fit(x, y)
            weak.partial_fit(x, y)
        strong_zeros = sum((p.data == 0).sum()
                           for p in strong.inner.module.parameters())
        weak_zeros = sum((p.data == 0).sum()
                         for p in weak.inner.module.parameters())
        assert strong_zeros > weak_zeros

    def test_rda_method(self, blob_data):
        x, y = blob_data
        baseline = AlinkBaseline(lr_factory, method="rda", l1=1e-6)
        for _ in range(60):
            baseline.partial_fit(x, y)
        assert (baseline.predict(x) == y).mean() > 0.9

    def test_clone_preserves_method(self):
        baseline = AlinkBaseline(lr_factory, method="rda")
        assert baseline.clone().method == "rda"

    def test_validation(self):
        with pytest.raises(ValueError):
            AlinkBaseline(lr_factory, method="bogus")


class TestAdwinDetector:
    def test_no_detection_on_stable_series(self, rng):
        detector = AdwinDetector(delta=0.002)
        detections = [detector.update(0.2 + rng.normal(scale=0.01))
                      for _ in range(60)]
        assert not any(detections)

    def test_detects_level_change(self, rng):
        detector = AdwinDetector(delta=0.002)
        for _ in range(30):
            detector.update(0.1 + rng.normal(scale=0.01))
        fired = False
        for _ in range(30):
            fired = fired or detector.update(0.8 + rng.normal(scale=0.01))
        assert fired
        assert detector.detections >= 1

    def test_window_cut_drops_stale_half(self, rng):
        detector = AdwinDetector(delta=0.002)
        for _ in range(30):
            detector.update(0.1)
        size_before = len(detector)
        for _ in range(10):
            detector.update(0.9)
        assert len(detector) < size_before + 10

    def test_validation(self):
        with pytest.raises(ValueError):
            AdwinDetector(delta=0.0)


class TestRiver:
    def test_resets_on_concept_change(self, rng):
        baseline = RiverBaseline(mlp_factory, delta=0.01)
        x0 = rng.normal(size=(64, 4))
        y0 = (x0[:, 0] > 0).astype(np.int64)
        for _ in range(25):
            baseline.partial_fit(x0, y0)
        # Flip the concept entirely.
        for _ in range(25):
            x = rng.normal(size=(64, 4))
            baseline.partial_fit(x, (x[:, 0] <= 0).astype(np.int64))
        assert baseline.resets >= 1

    def test_no_resets_on_stable_stream(self, rng):
        baseline = RiverBaseline(mlp_factory, delta=0.002)
        for _ in range(40):
            x = rng.normal(size=(64, 4))
            baseline.partial_fit(x, (x[:, 0] > 0).astype(np.int64))
        assert baseline.resets == 0


class TestCamel:
    def test_drops_high_loss_tail(self, blob_data):
        x, y = blob_data
        baseline = CamelBaseline(mlp_factory, drop_fraction=0.2)
        baseline.partial_fit(x, y)  # first fit trains on everything
        selected = baseline._select(x, y)
        assert len(selected) == int(round(len(x) * 0.8))

    def test_selection_removes_noisy_labels(self, blob_data):
        x, y = blob_data
        baseline = CamelBaseline(mlp_factory, drop_fraction=0.1)
        for _ in range(10):
            baseline.partial_fit(x, y)
        noisy = y.copy()
        noisy[:10] = 1 - noisy[:10]  # corrupt 10 labels
        selected = baseline._select(x, noisy)
        # Most corrupted rows should fall in the dropped high-loss tail.
        corrupted_kept = np.isin(np.arange(10), selected).sum()
        assert corrupted_kept <= 5

    def test_replay_buffer_fills(self, blob_data):
        x, y = blob_data
        baseline = CamelBaseline(mlp_factory, buffer_size=50)
        baseline.partial_fit(x, y)
        assert baseline._fill == 50

    def test_replay_returns_similar_samples(self, rng):
        baseline = CamelBaseline(mlp_factory, buffer_size=200,
                                 replay_fraction=0.5)
        x0 = rng.normal(size=(100, 4)) - 5.0
        x1 = rng.normal(size=(100, 4)) + 5.0
        baseline.partial_fit(np.concatenate([x0, x1]),
                             np.repeat([0, 1], 100))
        replay_x, _ = baseline._replay(rng.normal(size=(20, 4)) + 5.0)
        assert replay_x.mean() > 0  # drawn from the nearby (+5) region

    def test_validation(self):
        with pytest.raises(ValueError):
            CamelBaseline(mlp_factory, drop_fraction=1.0)
        with pytest.raises(ValueError):
            CamelBaseline(mlp_factory, replay_fraction=2.0)


class TestAGEM:
    def test_projection_removes_interference(self, rng):
        """After projection, g' . g_ref >= 0 by construction."""
        baseline = AGEMBaseline(mlp_factory, memory_size=200, sample_size=50,
                                seed=0)
        x0 = rng.normal(size=(100, 4))
        y0 = (x0[:, 0] > 0).astype(np.int64)
        for _ in range(5):
            baseline.partial_fit(x0, y0)
        # Conflicting task: reversed labels should trigger projections.
        for _ in range(10):
            x = rng.normal(size=(100, 4))
            baseline.partial_fit(x, (x[:, 0] <= 0).astype(np.int64))
        assert baseline.projections >= 1

    def test_no_projection_on_aligned_tasks(self, rng):
        baseline = AGEMBaseline(mlp_factory, memory_size=200, sample_size=50,
                                seed=0)
        for _ in range(15):
            x = rng.normal(size=(100, 4))
            baseline.partial_fit(x, (x[:, 0] > 0).astype(np.int64))
        assert baseline.projections == 0

    def test_flatten_unflatten_round_trip(self):
        grads = [np.arange(6.0).reshape(2, 3), np.arange(4.0)]
        flat = AGEMBaseline._flatten(grads)
        restored = AGEMBaseline._unflatten(flat, grads)
        for a, b in zip(grads, restored):
            np.testing.assert_array_equal(a, b)

    def test_memory_reservoir_bounded(self, rng):
        baseline = AGEMBaseline(mlp_factory, memory_size=64, sample_size=8)
        for _ in range(5):
            baseline.partial_fit(rng.normal(size=(50, 4)), np.zeros(50))
        assert baseline._fill == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            AGEMBaseline(mlp_factory, memory_size=0)
        with pytest.raises(ValueError):
            AGEMBaseline(mlp_factory, sample_size=0)


class TestRegistry:
    def test_all_six_registered(self):
        # Table I's six, plus the related-work comparators (Section II-B).
        assert {"flink-ml", "spark-mllib", "alink", "river", "camel",
                "a-gem"} <= set(BASELINES)
        assert {"ewc", "experts"} <= set(BASELINES)

    def test_groups_match_table1(self):
        assert set(LR_GROUP) == {"flink-ml", "spark-mllib", "alink"}
        assert set(MLP_GROUP) == {"river", "camel", "a-gem"}

    def test_make_baseline(self):
        baseline = make_baseline("river", mlp_factory, delta=0.01)
        assert isinstance(baseline, RiverBaseline)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_baseline("bogus", mlp_factory)
