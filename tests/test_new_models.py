"""Tests for the additional streaming models (naive Bayes, Hoeffding tree)."""

import numpy as np
import pytest

from repro.models import StreamingHoeffdingTree, StreamingNaiveBayes


class TestStreamingNaiveBayes:
    def test_separable_blobs(self, blob_data):
        x, y = blob_data
        model = StreamingNaiveBayes(num_features=4, num_classes=2)
        model.partial_fit(x, y)
        assert (model.predict(x) == y).mean() > 0.98

    def test_incremental_equals_batch(self, blob_data):
        """Welford/Chan merging: many small fits == one big fit."""
        x, y = blob_data
        whole = StreamingNaiveBayes(num_features=4, num_classes=2)
        whole.partial_fit(x, y)
        chunked = StreamingNaiveBayes(num_features=4, num_classes=2)
        for start in range(0, len(x), 17):
            chunked.partial_fit(x[start:start + 17], y[start:start + 17])
        np.testing.assert_allclose(chunked.predict_proba(x),
                                   whole.predict_proba(x), atol=1e-8)

    def test_untrained_predicts_uniform(self, rng):
        model = StreamingNaiveBayes(num_features=3, num_classes=4)
        proba = model.predict_proba(rng.normal(size=(5, 3)))
        np.testing.assert_allclose(proba, 0.25)

    def test_proba_simplex(self, blob_data, rng):
        x, y = blob_data
        model = StreamingNaiveBayes(num_features=4, num_classes=2)
        model.partial_fit(x, y)
        proba = model.predict_proba(rng.normal(size=(20, 4)) * 100)
        assert np.isfinite(proba).all()
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_priors_respected(self, rng):
        # Heavily imbalanced overlapping classes: prior should dominate.
        x = rng.normal(size=(1000, 2))
        y = (rng.random(1000) < 0.95).astype(np.int64)  # 95% class 1
        model = StreamingNaiveBayes(num_features=2, num_classes=2)
        model.partial_fit(x, y)
        predictions = model.predict(rng.normal(size=(200, 2)))
        assert (predictions == 1).mean() > 0.8

    def test_decay_forgets_old_concept(self, rng):
        x0 = rng.normal(-2, 0.4, size=(300, 2))
        x1 = rng.normal(2, 0.4, size=(300, 2))
        forgetful = StreamingNaiveBayes(num_features=2, num_classes=2,
                                        decay=0.5)
        sticky = StreamingNaiveBayes(num_features=2, num_classes=2,
                                     decay=1.0)
        for model in (forgetful, sticky):
            # Concept 1: region -2 -> label 0, region +2 -> label 1.
            model.partial_fit(np.concatenate([x0, x1]),
                              np.repeat([0, 1], 300))
            # Concept 2 (flipped), fed repeatedly.
            for _ in range(3):
                model.partial_fit(np.concatenate([x0, x1]),
                                  np.repeat([1, 0], 300))
        probe = rng.normal(-2, 0.4, size=(100, 2))
        assert (forgetful.predict(probe) == 1).mean() > 0.9
        assert ((forgetful.predict(probe) == 1).mean()
                >= (sticky.predict(probe) == 1).mean())

    def test_state_round_trip(self, blob_data):
        x, y = blob_data
        model = StreamingNaiveBayes(num_features=4, num_classes=2)
        model.partial_fit(x, y)
        other = model.clone()
        other.load_state_dict(model.state_dict())
        np.testing.assert_allclose(other.predict_proba(x),
                                   model.predict_proba(x))

    def test_state_validation(self):
        model = StreamingNaiveBayes(num_features=4, num_classes=2)
        with pytest.raises(KeyError):
            model.load_state_dict({"counts": np.zeros(2)})
        with pytest.raises(ValueError):
            model.load_state_dict({
                "counts": np.zeros(2), "means": np.zeros((3, 3)),
                "m2": np.zeros((2, 4)),
            })

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            StreamingNaiveBayes(num_features=0, num_classes=2)
        with pytest.raises(ValueError):
            StreamingNaiveBayes(num_features=2, num_classes=1)
        with pytest.raises(ValueError):
            StreamingNaiveBayes(num_features=2, num_classes=2, decay=0.0)

    def test_works_inside_freewayml(self):
        from repro.core import Learner
        from repro.data import ElectricitySimulator
        learner = Learner(
            lambda: StreamingNaiveBayes(num_features=8, num_classes=2),
            window_batches=4,
        )
        reports = [learner.process(batch) for batch
                   in ElectricitySimulator(seed=1).stream(20, 128)]
        assert np.mean([r.accuracy for r in reports[5:]]) > 0.7


class TestStreamingHoeffdingTree:
    def test_learns_axis_aligned_concept(self, rng):
        tree = StreamingHoeffdingTree(num_features=3, num_classes=2,
                                      grace_period=100)
        for _ in range(15):
            x = rng.uniform(0, 1, size=(256, 3))
            y = (x[:, 1] > 0.5).astype(np.int64)
            tree.partial_fit(x, y)
        x_test = rng.uniform(0, 1, size=(500, 3))
        y_test = (x_test[:, 1] > 0.5).astype(np.int64)
        # The candidate-threshold grid lands near, not exactly at, 0.5.
        assert (tree.predict(x_test) == y_test).mean() > 0.92
        assert tree.splits >= 1

    def test_no_split_before_grace_period(self, rng):
        tree = StreamingHoeffdingTree(num_features=2, num_classes=2,
                                      grace_period=10_000)
        x = rng.uniform(0, 1, size=(256, 2))
        tree.partial_fit(x, (x[:, 0] > 0.5).astype(np.int64))
        assert tree.splits == 0
        assert tree.num_leaves == 1

    def test_pure_stream_never_splits(self, rng):
        tree = StreamingHoeffdingTree(num_features=2, num_classes=2,
                                      grace_period=50)
        for _ in range(10):
            tree.partial_fit(rng.uniform(0, 1, size=(128, 2)),
                             np.zeros(128, dtype=np.int64))
        assert tree.splits == 0

    def test_max_depth_respected(self, rng):
        tree = StreamingHoeffdingTree(num_features=4, num_classes=2,
                                      grace_period=50, max_depth=2,
                                      tie_threshold=0.5)
        for _ in range(40):
            x = rng.uniform(0, 1, size=(256, 4))
            y = ((x[:, 0] > 0.5) ^ (x[:, 1] > 0.5)).astype(np.int64)
            tree.partial_fit(x, y)
        assert tree.depth <= 2

    def test_proba_simplex(self, rng):
        tree = StreamingHoeffdingTree(num_features=3, num_classes=3,
                                      grace_period=100)
        for _ in range(5):
            x = rng.uniform(0, 1, size=(200, 3))
            tree.partial_fit(x, rng.integers(0, 3, size=200))
        proba = tree.predict_proba(rng.uniform(0, 1, size=(50, 3)))
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_state_round_trip_preserves_structure(self, rng):
        tree = StreamingHoeffdingTree(num_features=3, num_classes=2,
                                      grace_period=100)
        for _ in range(12):
            x = rng.uniform(0, 1, size=(256, 3))
            tree.partial_fit(x, (x[:, 1] > 0.5).astype(np.int64))
        restored = tree.clone()
        restored.load_state_dict(tree.state_dict())
        assert restored.splits == tree.splits
        probe = rng.uniform(0, 1, size=(100, 3))
        np.testing.assert_allclose(restored.predict_proba(probe),
                                   tree.predict_proba(probe))

    def test_malformed_state_rejected(self, rng):
        tree = StreamingHoeffdingTree(num_features=2, num_classes=2)
        state = tree.state_dict()
        state["kinds"] = np.array([1, 0])  # split with only one child
        with pytest.raises((ValueError, IndexError)):
            tree.clone().load_state_dict(state)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            StreamingHoeffdingTree(0, 2)
        with pytest.raises(ValueError):
            StreamingHoeffdingTree(2, 2, delta=1.0)
        with pytest.raises(ValueError):
            StreamingHoeffdingTree(2, 2, grace_period=0)
        with pytest.raises(ValueError):
            StreamingHoeffdingTree(2, 2, max_depth=0)

    def test_works_inside_freewayml(self):
        from repro.core import Learner
        from repro.data import ElectricitySimulator
        learner = Learner(
            lambda: StreamingHoeffdingTree(num_features=8, num_classes=2,
                                           grace_period=100),
            window_batches=4,
        )
        reports = [learner.process(batch) for batch
                   in ElectricitySimulator(seed=1).stream(25, 128)]
        assert np.mean([r.accuracy for r in reports[10:]]) > 0.6
