"""Tests for shift distances and embedding history (repro.shift.distance)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.shift import EmbeddingHistory, nearest_distance, shift_distance


class TestShiftDistance:
    def test_euclidean(self):
        assert shift_distance([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0)

    def test_zero_for_identical(self):
        assert shift_distance([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            shift_distance([1.0], [1.0, 2.0])

    @given(hnp.arrays(np.float64, 4, elements=st.floats(-10, 10)),
           hnp.arrays(np.float64, 4, elements=st.floats(-10, 10)))
    @settings(max_examples=50, deadline=None)
    def test_symmetry_and_nonnegativity(self, a, b):
        assert shift_distance(a, b) == pytest.approx(shift_distance(b, a))
        assert shift_distance(a, b) >= 0.0

    @given(hnp.arrays(np.float64, 3, elements=st.floats(-5, 5)),
           hnp.arrays(np.float64, 3, elements=st.floats(-5, 5)),
           hnp.arrays(np.float64, 3, elements=st.floats(-5, 5)))
    @settings(max_examples=50, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert (shift_distance(a, c)
                <= shift_distance(a, b) + shift_distance(b, c) + 1e-9)


class TestNearestDistance:
    def test_finds_minimum(self):
        history = np.array([[0.0, 0.0], [5.0, 5.0], [1.0, 0.0]])
        distance, index = nearest_distance([1.1, 0.0], history)
        assert index == 2
        assert distance == pytest.approx(0.1)

    def test_empty_history_raises(self):
        with pytest.raises(ValueError):
            nearest_distance([0.0], np.empty((0, 1)))

    def test_wrong_rank_raises(self):
        with pytest.raises(ValueError):
            nearest_distance([0.0], np.zeros(3))


class TestEmbeddingHistory:
    def test_append_and_len(self):
        history = EmbeddingHistory(capacity=4)
        for i in range(3):
            history.append([float(i), 0.0])
        assert len(history) == 3

    def test_capacity_evicts_oldest(self):
        history = EmbeddingHistory(capacity=3)
        for i in range(5):
            history.append([float(i)])
        array = history.as_array()
        np.testing.assert_allclose(array.ravel(), [2.0, 3.0, 4.0])

    def test_nearest_excludes_recent(self):
        history = EmbeddingHistory(capacity=10, exclude_recent=1)
        history.append([0.0, 0.0])
        history.append([100.0, 100.0])  # the "previous batch"
        result = history.nearest([100.0, 100.0])
        distance, index = result
        # Must match the older point, not the just-added one.
        assert index == 0
        assert distance == pytest.approx(np.hypot(100, 100))

    def test_nearest_none_with_insufficient_history(self):
        history = EmbeddingHistory(capacity=10, exclude_recent=1)
        assert history.nearest([0.0]) is None
        history.append([0.0])
        assert history.nearest([0.0]) is None  # only the excluded entry

    def test_exclude_recent_zero(self):
        history = EmbeddingHistory(capacity=4, exclude_recent=0)
        history.append([1.0])
        distance, index = history.nearest([1.0])
        assert distance == 0.0
        assert index == 0

    def test_as_array_empty(self):
        assert EmbeddingHistory().as_array().size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            EmbeddingHistory(capacity=0)
        with pytest.raises(ValueError):
            EmbeddingHistory(exclude_recent=-1)


class TestEmbeddingHistoryIncrementalBuffer:
    """The sliding-buffer bookkeeping must be invisible: ``nearest`` and
    ``as_array`` answer exactly as a naive restack-every-call history
    would, through appends, evictions, and the compaction memmove."""

    def _naive(self, rows, capacity, exclude_recent, query):
        live = rows[-capacity:]
        usable = live[:len(live) - exclude_recent]
        if not usable:
            return None
        stacked = np.stack(usable)
        deltas = np.linalg.norm(stacked - query, axis=1)
        index = int(deltas.argmin())
        return float(deltas[index]), index

    def test_nearest_unchanged_across_append_and_evict(self):
        from repro.shift.distance import EmbeddingHistory
        rng = np.random.default_rng(9)
        capacity = 5
        history = EmbeddingHistory(capacity=capacity, exclude_recent=1)
        rows = []
        # 4×capacity appends forces eviction and at least one compaction
        # of the 2×capacity backing buffer.
        for step in range(4 * capacity):
            row = rng.normal(size=3)
            history.append(row)
            rows.append(row)
            query = rng.normal(size=3)
            expected = self._naive(rows, capacity, 1, query)
            actual = history.nearest(query)
            if expected is None:
                assert actual is None
            else:
                distance, index = actual
                assert index == expected[1]
                np.testing.assert_allclose(distance, expected[0],
                                           rtol=1e-12, atol=1e-12)
            np.testing.assert_array_equal(
                history.as_array(), np.stack(rows[-capacity:])
            )

    def test_cached_norms_match_reference_path(self):
        from repro.perf import configure
        from repro.shift.distance import EmbeddingHistory
        rng = np.random.default_rng(10)
        history = EmbeddingHistory(capacity=8, exclude_recent=1)
        for _ in range(12):
            history.append(rng.normal(size=4))
        query = rng.normal(size=4)
        with configure(cached_nearest=True):
            fast = history.nearest(query)
        with configure(cached_nearest=False):
            slow = history.nearest(query)
        assert fast[1] == slow[1]
        np.testing.assert_allclose(fast[0], slow[0], rtol=1e-12, atol=1e-12)

    def test_dimension_change_rebuilds_buffer(self):
        from repro.shift.distance import EmbeddingHistory
        history = EmbeddingHistory(capacity=4, exclude_recent=0)
        history.append(np.ones(3))
        history.append(np.zeros(5))  # PCA refit changed the space
        assert len(history) == 1
        assert history.as_array().shape == (1, 5)
