"""Tests for the hot-path performance layer (``repro.perf``).

The contract of every optimization introduced by the perf pass is
*bitwise* equivalence: with a flag on or off, the same stream must
produce the same accuracy sequence and the same final parameters, down
to the last float bit.  These tests hold that line — first per
optimization (tape vs DFS, fused linear, fused loss, in-place
optimizers), then end to end through ``Learner.process``.
"""

import numpy as np
import pytest

from repro import nn
from repro.core import Learner
from repro.data.drift import (GaussianMixtureConcept, Segment,
                              stream_from_schedule)
from repro.eval import model_factory_for
from repro.nn import functional as F
from repro.obs import Observability
from repro.perf import (HOT_PATH_HISTOGRAM, BufferPool, HotPathProfiler,
                        PerfConfig, can_own, config, configure,
                        optimizations_disabled, optimizations_enabled)


# -- feature flags ------------------------------------------------------------


class TestPerfConfig:
    def test_all_flags_on_by_default(self):
        assert all(config.as_dict().values())

    def test_configure_restores_on_exit(self):
        before = config.as_dict()
        with configure(graph_tape=False, fused_loss=False):
            assert not config.graph_tape
            assert not config.fused_loss
            assert config.fused_linear  # untouched flags stay on
        assert config.as_dict() == before

    def test_configure_rejects_unknown_flag(self):
        with pytest.raises(TypeError, match="unknown perf flags"):
            with configure(warp_drive=True):
                pass  # pragma: no cover

    def test_disabled_and_enabled_contexts(self):
        with optimizations_disabled():
            assert not any(config.as_dict().values())
            with optimizations_enabled():
                assert all(config.as_dict().values())
            assert not any(config.as_dict().values())
        assert all(config.as_dict().values())

    def test_fresh_instance_can_start_disabled(self):
        assert not any(PerfConfig(enabled=False).as_dict().values())


# -- buffer pool --------------------------------------------------------------


class TestBufferPool:
    def test_acquire_release_reuses_buffer(self):
        pool = BufferPool()
        first = pool.acquire((4, 3))
        assert pool.release(first)
        again = pool.acquire((4, 3))
        assert again is first
        stats = pool.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_zeros_clears_recycled_contents(self):
        pool = BufferPool()
        dirty = pool.acquire((5,))
        dirty[:] = 7.0
        pool.release(dirty)
        clean = pool.zeros((5,))
        assert clean is dirty
        np.testing.assert_array_equal(clean, np.zeros(5))

    def test_release_refuses_views(self):
        pool = BufferPool()
        base = np.zeros((4, 4))
        assert not pool.release(base[:2])
        assert pool.stats()["released"] == 0

    def test_max_per_key_caps_retention(self):
        pool = BufferPool(max_per_key=1)
        assert pool.release(np.zeros(3))
        assert not pool.release(np.zeros(3))
        assert pool.stats()["idle_buffers"] == 1

    def test_distinct_dtypes_use_distinct_lists(self):
        pool = BufferPool()
        pool.release(np.zeros(3, dtype=np.float64))
        from_pool = pool.acquire(3, dtype=np.float32)
        assert from_pool.dtype == np.float32
        assert pool.stats()["misses"] == 1

    def test_clear_resets_thread_state(self):
        pool = BufferPool()
        pool.release(np.zeros(2))
        pool.clear()
        assert pool.stats() == {"hits": 0, "misses": 0, "released": 0,
                                "idle_buffers": 0}


class TestCanOwn:
    def test_private_buffer_is_adoptable(self):
        g = np.zeros(3)
        assert can_own(np.ones(3), g)

    def test_views_and_self_are_not(self):
        g = np.zeros((2, 3))
        assert not can_own(g, g)          # a + a delivers the same array twice
        assert not can_own(g[0], np.zeros(3))  # view: base still exposed


# -- per-optimization bitwise equivalence -------------------------------------


def _grads(model, x, y):
    """Forward + backward one batch; returns (loss_bits, grad arrays)."""
    for p in model.parameters():
        p.grad = None
    out = model(nn.Tensor(x))
    loss = F.cross_entropy(out, y)
    loss.backward()
    return (loss.data.tobytes(),
            [p.grad.copy() for p in model.parameters()])


def _small_problem(seed=3):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(32, 6))
    y = rng.integers(0, 4, size=32)
    return x, y


def _mlp(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(nn.Linear(6, 8, rng=rng), nn.ReLU(),
                         nn.Linear(8, 4, rng=rng))


class TestBitwiseEquivalence:
    def test_tape_matches_dfs_backward(self):
        x, y = _small_problem()
        model = _mlp()
        with configure(graph_tape=True):
            loss_tape, grads_tape = _grads(model, x, y)
        with configure(graph_tape=False):
            loss_dfs, grads_dfs = _grads(model, x, y)
        assert loss_tape == loss_dfs
        for a, b in zip(grads_tape, grads_dfs):
            assert a.tobytes() == b.tobytes()

    def test_fused_linear_matches_unfused(self):
        x, y = _small_problem(seed=5)
        model = _mlp()
        with configure(fused_linear=True):
            loss_f, grads_f = _grads(model, x, y)
        with configure(fused_linear=False):
            loss_u, grads_u = _grads(model, x, y)
        assert loss_f == loss_u
        for a, b in zip(grads_f, grads_u):
            assert a.tobytes() == b.tobytes()

    def test_fused_loss_matches_chain(self):
        rng = np.random.default_rng(11)
        logits_data = rng.normal(scale=4.0, size=(64, 5))
        labels = rng.integers(0, 5, size=64)
        results = []
        for fused in (True, False):
            with configure(fused_loss=fused):
                logits = nn.Tensor(logits_data.copy(), requires_grad=True)
                loss = F.cross_entropy(logits, labels)
                loss.backward()
                results.append((loss.data.tobytes(),
                                logits.grad.tobytes()))
        assert results[0] == results[1]

    def test_inference_softmax_matches_graph_path(self):
        rng = np.random.default_rng(13)
        logits = nn.Tensor(rng.normal(scale=6.0, size=(40, 7)))
        with configure(fused_loss=True):
            fast = F.softmax(logits).data
        with configure(fused_loss=False):
            slow = F.softmax(logits).data
        assert fast.tobytes() == slow.tobytes()

    @pytest.mark.parametrize("optimizer", ["sgd", "adam"])
    def test_inplace_optimizer_matches_reference(self, optimizer):
        x, y = _small_problem(seed=7)

        def train(flag):
            model = _mlp()
            if optimizer == "sgd":
                opt = nn.SGD(model.parameters(), lr=0.1, momentum=0.9)
            else:
                opt = nn.Adam(model.parameters(), lr=0.01)
            with configure(inplace_optim=flag):
                for _ in range(5):
                    opt.zero_grad()
                    loss = F.cross_entropy(model(nn.Tensor(x)), y)
                    loss.backward()
                    opt.step()
            return [p.data.tobytes() for p in model.parameters()]

        assert train(True) == train(False)


# -- end-to-end equivalence through the learner -------------------------------


def _probe_stream(num_batches=12, batch_size=64):
    rng = np.random.default_rng(7)
    concepts = {"c0": GaussianMixtureConcept(4, 16, rng, spread=3.0)}
    segments = [Segment("c0", num_batches, kind="directional",
                        magnitude=0.05)]
    return list(stream_from_schedule(concepts, segments, batch_size, rng,
                                     num_classes=4))


class TestLearnerEquivalence:
    @pytest.mark.parametrize("kind", ["lr", "mlp"])
    def test_accuracy_sequence_and_params_bitwise_identical(self, kind):
        stream = _probe_stream()

        def run(optimized):
            factory = model_factory_for(kind, 16, 4, lr=0.3, seed=0)
            learner = Learner(factory, seed=0)
            accs = []
            if optimized:
                for batch in stream:
                    accs.append(learner.process(batch).accuracy)
            else:
                with optimizations_disabled():
                    for batch in stream:
                        accs.append(learner.process(batch).accuracy)
            params = [np.asarray(value).tobytes()
                      for level in learner.ensemble.levels
                      for value in level.model.state_dict().values()]
            return accs, params

        accs_on, params_on = run(True)
        accs_off, params_off = run(False)
        assert accs_on == accs_off
        assert params_on == params_off


# -- profiler -----------------------------------------------------------------


class TestHotPathProfiler:
    def test_stage_spans_aggregate(self):
        profiler = HotPathProfiler()
        for _ in range(3):
            with profiler.stage("train"):
                pass
        with profiler.stage("assess"):
            pass
        summary = profiler.summary()
        assert summary["train"]["count"] == 3
        assert summary["assess"]["count"] == 1
        for stats in summary.values():
            assert stats["total_s"] >= 0.0
            assert stats["max_s"] >= stats["p50_s"] >= 0.0

    def test_render_lists_stages_by_total(self):
        profiler = HotPathProfiler()
        profiler.record("train", 0.5)
        profiler.record("assess", 0.1)
        table = profiler.render()
        lines = table.splitlines()
        assert "stage" in lines[0]
        assert lines[1].startswith("train")
        assert lines[2].startswith("assess")

    def test_render_empty(self):
        assert "no samples" in HotPathProfiler().render()

    def test_reset_drops_samples(self):
        profiler = HotPathProfiler()
        profiler.record("train", 0.1)
        profiler.reset()
        assert profiler.summary() == {}

    def test_feeds_histogram_when_obs_enabled(self):
        obs = Observability()
        profiler = HotPathProfiler(obs=obs)
        profiler.record("train", 0.002)
        snapshot = obs.registry.snapshot()
        assert HOT_PATH_HISTOGRAM in snapshot
        series = snapshot[HOT_PATH_HISTOGRAM]["series"]
        assert any(entry["labels"].get("stage") == "train"
                   for entry in series)

    def test_learner_wires_all_stages(self):
        profiler = HotPathProfiler()
        factory = model_factory_for("lr", 16, 4, lr=0.3, seed=0)
        learner = Learner(factory, seed=0, profiler=profiler)
        for batch in _probe_stream(num_batches=6):
            learner.process(batch)
        summary = profiler.summary()
        for stage in ("assess", "select", "infer", "train", "experience"):
            assert stage in summary, f"stage {stage!r} never recorded"
            assert summary[stage]["count"] == 6

    def test_learner_without_profiler_records_nothing(self):
        factory = model_factory_for("lr", 16, 4, lr=0.3, seed=0)
        learner = Learner(factory, seed=0)
        assert learner.profiler is None
        learner.process(_probe_stream(num_batches=1)[0])
