"""Tests for the paper's optional/extension features.

Covers the pre-computing window wired into the granularity ladder
(Section V-B), the mean+std distribution representation (Section III
future work), and CEC data segmentation (Section VI-F future work).
"""

import numpy as np
import pytest

from repro.core import (
    CoherentExperienceClustering,
    ExperienceBuffer,
    GranularityLevel,
    Learner,
    MultiGranularityEnsemble,
)
from repro.data import ElectricitySimulator
from repro.models import StreamingLR, StreamingMLP
from repro.shift import PatternClassifier, ShiftPattern, WarmupPCA


def lr_factory():
    return StreamingLR(num_features=4, num_classes=2, lr=0.3, seed=0)


class TestPrecomputeLevel:
    def _batches(self, rng, count=4, n=32):
        out = []
        for _ in range(count):
            x = rng.normal(size=(n, 4))
            y = (x[:, 0] > 0).astype(np.int64)
            out.append((x, y, x.mean(axis=0)[:2]))
        return out

    def test_matches_aggregated_gradient_update(self, rng):
        """A precompute level's completion equals one mean-gradient step
        over the window batches."""
        batches = self._batches(rng, count=3)
        level = GranularityLevel(lr_factory(), window_batches=3,
                                 precompute=True)
        reference = lr_factory()

        all_x = np.concatenate([x for x, _, _ in batches])
        all_y = np.concatenate([y for _, y, _ in batches])
        reference.partial_fit(all_x, all_y)

        for x, y, embedding in batches:
            level.update(x, y, embedding)
        for trained, expected in zip(level.model.module.parameters(),
                                     reference.module.parameters()):
            np.testing.assert_allclose(trained.data, expected.data,
                                       atol=1e-12)

    def test_trains_at_window_completion_only(self, rng):
        level = GranularityLevel(lr_factory(), window_batches=3,
                                 precompute=True)
        infos = [level.update(x, y, e)
                 for x, y, e in self._batches(rng, count=3)]
        assert [info["trained"] for info in infos] == [False, False, True]
        assert level.updates == 1

    def test_precompute_rejects_short_level(self):
        with pytest.raises(ValueError):
            GranularityLevel(lr_factory(), window_batches=1, precompute=True)

    def test_ensemble_flag_applies_to_window_levels_only(self):
        ensemble = MultiGranularityEnsemble(lr_factory, window_sizes=(1, 4),
                                            precompute=True)
        assert ensemble.short_level._precompute_window is None
        assert ensemble.long_levels[0]._precompute_window is not None

    def test_learner_with_precompute_runs(self):
        learner = Learner(
            lambda: StreamingMLP(num_features=8, num_classes=2, lr=0.3,
                                 seed=0),
            window_batches=4, use_precompute=True,
        )
        reports = [
            learner.process(batch)
            for batch in ElectricitySimulator(seed=1).stream(20, 128)
        ]
        assert np.mean([r.accuracy for r in reports[5:]]) > 0.7
        assert learner.ensemble.long_levels[0].updates >= 3


class TestMeanStdRepresentation:
    def test_embedding_doubles_dimension(self, rng):
        x = rng.normal(size=(200, 5))
        mean_pca = WarmupPCA(num_components=2).fit(x)
        rich_pca = WarmupPCA(num_components=2,
                             representation="mean-std").fit(x)
        batch = rng.normal(size=(50, 5))
        assert mean_pca.batch_embedding(batch).shape == (2,)
        assert rich_pca.batch_embedding(batch).shape == (4,)

    def test_mean_part_matches_plain_representation(self, rng):
        x = rng.normal(size=(200, 5))
        mean_pca = WarmupPCA(num_components=2).fit(x)
        rich_pca = WarmupPCA(num_components=2,
                             representation="mean-std").fit(x)
        batch = rng.normal(size=(50, 5))
        np.testing.assert_allclose(rich_pca.batch_embedding(batch)[:2],
                                   mean_pca.batch_embedding(batch))

    def test_detects_variance_collapse(self, rng):
        """A quieting regime (same mean, much *smaller* spread) shrinks the
        batch-mean noise, so the mean representation sees nothing — while
        mean-std sees the std components move."""
        def drive(representation):
            clf = PatternClassifier(warmup_points=2,
                                    representation=representation)
            rng_local = np.random.default_rng(0)
            for _ in range(15):
                clf.assess(rng_local.normal(scale=1.0, size=(256, 6)))
            return clf.assess(
                rng_local.normal(scale=0.05, size=(256, 6))
            ).pattern

        assert drive("mean") is ShiftPattern.SLIGHT
        assert drive("mean-std") in (ShiftPattern.SUDDEN,
                                     ShiftPattern.REOCCURRING)

    def test_variance_explosion_detected_more_decisively(self, rng):
        """Both representations flag a volatility explosion (the inflated
        batch-mean noise leaks into Eq. 6 too), but mean-std's severity is
        an order of magnitude stronger."""
        def severity(representation):
            clf = PatternClassifier(warmup_points=2,
                                    representation=representation)
            rng_local = np.random.default_rng(0)
            for _ in range(15):
                clf.assess(rng_local.normal(scale=1.0, size=(256, 6)))
            return clf.assess(
                rng_local.normal(scale=6.0, size=(256, 6))
            ).severity

        assert severity("mean-std") > 5 * severity("mean")

    def test_learner_accepts_representation(self):
        learner = Learner(lr_factory, representation="mean-std")
        assert learner.classifier.pca.representation == "mean-std"

    def test_invalid_representation_rejected(self):
        with pytest.raises(ValueError):
            WarmupPCA(representation="bogus")


class TestSegmentedCEC:
    def _buffer(self, rng):
        buffer = ExperienceBuffer(capacity=400, per_batch=200)
        x = np.concatenate([
            rng.normal(size=(60, 2)) * 0.3,
            rng.normal(size=(60, 2)) * 0.3 + 8.0,
        ])
        y = np.concatenate([np.zeros(60, dtype=int),
                            np.ones(60, dtype=int)])
        buffer.add(x, y)
        return buffer

    def test_segments_concatenate_full_batch(self, rng):
        buffer = self._buffer(rng)
        cec = CoherentExperienceClustering(2, experience_points=60,
                                           segments=3, seed=0)
        x = rng.normal(size=(90, 2))
        result = cec.predict(x, buffer)
        assert result.labels.shape == (90,)
        assert result.proba.shape == (90, 2)

    def test_single_segment_equals_default(self, rng):
        buffer = self._buffer(rng)
        x = rng.normal(size=(60, 2))
        plain = CoherentExperienceClustering(2, experience_points=60,
                                             seed=0).predict(x, buffer)
        one_segment = CoherentExperienceClustering(
            2, experience_points=60, segments=1, seed=0
        ).predict(x, buffer)
        np.testing.assert_array_equal(plain.labels, one_segment.labels)

    def test_tiny_batch_falls_back_to_unsegmented(self, rng):
        buffer = self._buffer(rng)
        cec = CoherentExperienceClustering(2, experience_points=60,
                                           segments=8, seed=0)
        result = cec.predict(rng.normal(size=(6, 2)), buffer)
        assert result.labels.shape == (6,)

    def test_segmentation_handles_mid_batch_shift(self, rng):
        """A batch whose halves come from different regions is labeled
        correctly per segment."""
        buffer = self._buffer(rng)
        x = np.concatenate([
            rng.normal(size=(40, 2)) * 0.3,        # region of class 0
            rng.normal(size=(40, 2)) * 0.3 + 8.0,  # region of class 1
        ])
        y_true = np.concatenate([np.zeros(40), np.ones(40)])
        cec = CoherentExperienceClustering(2, experience_points=120,
                                           segments=2, seed=0)
        result = cec.predict(x, buffer)
        assert (result.labels == y_true).mean() > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            CoherentExperienceClustering(2, segments=0)
