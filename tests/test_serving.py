"""Tests for the multi-tenant serving front end (``repro.serving``).

Covers the session registry (LRU activation, single-flight rehydration,
pinning, checkpoint stores), the asyncio service (micro-batching, shed
policies, the per-tenant breaker, pressure→degrade coupling), the traffic
generator's per-tenant determinism, the serial-replay equivalence
contract, and the ``/health`` integration with the telemetry server.
"""

import asyncio
import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.core.learner import Learner
from repro.models import StreamingLR
from repro.obs import (
    Observability,
    RequestShed,
    TelemetryServer,
    TenantActivated,
    TenantEvicted,
)
from repro.perf.config import optimizations_disabled
from repro.serving import (
    DirCheckpointStore,
    MemoryCheckpointStore,
    ModelEstimator,
    NullCheckpointStore,
    ServeConfig,
    SessionRegistry,
    StreamingService,
    TenantStream,
    make_requests,
    predict_and_update,
    serve_requests,
    zipf_tenants,
)

NUM_FEATURES = 4
NUM_CLASSES = 2


def lr_factory():
    return StreamingLR(num_features=NUM_FEATURES, num_classes=NUM_CLASSES,
                       seed=0)


def make_learner(_tenant: str = "") -> Learner:
    return Learner(lr_factory, num_models=1, window_batches=4, seed=0)


def labeled_rows(rows: int = 8, seed: int = 0):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, NUM_CLASSES, size=rows)
    x = np.where(y[:, None] == 1, 2.0, -2.0) + rng.normal(
        size=(rows, NUM_FEATURES))
    return x, y


# -- checkpoint stores ---------------------------------------------------------


class TestCheckpointStores:
    def train_one(self) -> Learner:
        learner = make_learner()
        x, y = labeled_rows(64)
        predict_and_update(learner, x, y)
        return learner

    def assert_restores(self, store):
        trained = self.train_one()
        assert "t" not in store
        assert store.save("t", trained) > 0 or isinstance(
            store, NullCheckpointStore)
        assert "t" in store
        fresh = make_learner()
        assert store.load("t", fresh)
        probe, _ = labeled_rows(16, seed=9)
        np.testing.assert_array_equal(
            predict_and_update(trained, probe),
            predict_and_update(fresh, probe))

    def test_memory_store_round_trip(self):
        store = MemoryCheckpointStore()
        self.assert_restores(store)
        assert len(store) == 1

    def test_memory_store_copies_state(self):
        # A stored checkpoint must not alias the live learner: training
        # after save must not change what load restores.
        store = MemoryCheckpointStore()
        trained = self.train_one()
        store.save("t", trained)
        frozen = make_learner()
        store.load("t", frozen)
        x, y = labeled_rows(64, seed=5)
        predict_and_update(trained, x, y)  # drift the live learner
        fresh = make_learner()
        store.load("t", fresh)
        probe, _ = labeled_rows(16, seed=9)
        np.testing.assert_array_equal(
            predict_and_update(frozen, probe),
            predict_and_update(fresh, probe))

    def test_dir_store_round_trip(self, tmp_path):
        self.assert_restores(DirCheckpointStore(tmp_path))

    def test_dir_store_sanitizes_without_collisions(self, tmp_path):
        store = DirCheckpointStore(tmp_path)
        store.save("a/b", self.train_one())
        store.save("a_b", self.train_one())
        assert "a/b" in store and "a_b" in store
        assert len(list(tmp_path.glob("*.npz"))) == 2

    def test_null_store_keeps_nothing(self):
        store = NullCheckpointStore()
        assert store.save("t", self.train_one()) == 0
        assert "t" not in store
        assert not store.load("t", make_learner())

    def test_stores_reject_non_learner(self, tmp_path):
        class NotALearner:
            pass

        for store in (MemoryCheckpointStore(), DirCheckpointStore(tmp_path)):
            with pytest.raises(TypeError, match="Learner"):
                store.save("t", NotALearner())
            with pytest.raises(TypeError, match="Learner"):
                store.load("t", NotALearner())


# -- session registry ----------------------------------------------------------


class TestSessionRegistry:
    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            SessionRegistry(make_learner, capacity=0)

    def test_lru_eviction_order(self):
        registry = SessionRegistry(make_learner, capacity=2)
        for tenant in ("a", "b", "c"):
            registry.acquire(tenant)
            registry.release(tenant)
        assert registry.resident() == ["b", "c"]
        stats = registry.stats()
        assert stats["activations"] == 3
        assert stats["evictions"] == 1
        # Touching "b" makes "c" the LRU victim for the next activation.
        registry.acquire("b")
        registry.release("b")
        registry.acquire("d")
        registry.release("d")
        assert registry.resident() == ["b", "d"]

    def test_eviction_checkpoints_and_rehydrates(self):
        registry = SessionRegistry(make_learner, capacity=1)
        x, y = labeled_rows(64)
        with registry.session("a") as estimator:
            predict_and_update(estimator, x, y)
        reference = make_learner()
        predict_and_update(reference, x, y)
        registry.acquire("b")  # evicts "a" through the store
        registry.release("b")
        assert registry.resident() == ["b"]
        probe, _ = labeled_rows(16, seed=9)
        with registry.session("a") as estimator:
            restored = predict_and_update(estimator, probe)
        np.testing.assert_array_equal(
            restored, predict_and_update(reference, probe))
        assert registry.stats()["rehydrations"] == 1

    def test_pinned_sessions_survive_pressure(self):
        registry = SessionRegistry(make_learner, capacity=2)
        with registry.session("a"):
            registry.acquire("b")
            registry.release("b")
            registry.acquire("c")
            registry.release("c")
            # "a" is pinned: the registry overshoots rather than evict it.
            assert "a" in registry.resident()
        registry.acquire("d")
        registry.release("d")
        assert "a" not in registry.resident()  # unpinned LRU drained

    def test_unbalanced_release_raises(self):
        registry = SessionRegistry(make_learner, capacity=2)
        with pytest.raises(RuntimeError, match="without a matching acquire"):
            registry.release("ghost")
        registry.acquire("a")
        registry.release("a")
        with pytest.raises(RuntimeError, match="without a matching acquire"):
            registry.release("a")

    def test_explicit_evict(self):
        registry = SessionRegistry(make_learner, capacity=4)
        registry.acquire("a")
        assert not registry.evict("a")  # pinned: eviction stands down
        registry.release("a")
        assert registry.evict("a")
        assert not registry.evict("a")  # already gone
        assert "a" in registry.store

    def test_flush_checkpoints_resident_sessions(self):
        registry = SessionRegistry(make_learner, capacity=4)
        for tenant in ("a", "b"):
            registry.acquire(tenant)
            registry.release(tenant)
        assert registry.flush() == 2
        assert registry.resident() == ["a", "b"]  # still live
        assert "a" in registry.store and "b" in registry.store

    def test_close_evicts_everything(self):
        registry = SessionRegistry(make_learner, capacity=4)
        for tenant in ("a", "b", "c"):
            registry.acquire(tenant)
            registry.release(tenant)
        registry.close()
        assert len(registry) == 0
        assert all(tenant in registry.store for tenant in ("a", "b", "c"))

    def test_close_refuses_pinned_sessions(self):
        registry = SessionRegistry(make_learner, capacity=4)
        registry.acquire("a")
        with pytest.raises(RuntimeError, match="pinned"):
            registry.close()
        registry.release("a")
        registry.close()

    def test_on_activate_callback(self):
        activated = []
        registry = SessionRegistry(
            make_learner, capacity=2,
            on_activate=lambda tenant, estimator: activated.append(tenant))
        with registry.session("a"):
            pass
        with registry.session("a"):
            pass  # still resident: no second activation
        assert activated == ["a"]

    def test_activation_events_and_counters(self):
        obs = Observability.in_memory()
        registry = SessionRegistry(make_learner, capacity=1, obs=obs)
        for tenant in ("a", "b", "a"):
            registry.acquire(tenant)
            registry.release(tenant)
        activated = obs.sink.events_of(TenantActivated)
        assert [event.tenant for event in activated] == ["a", "b", "a"]
        assert activated[2].rehydrated  # second "a" came from checkpoint
        evicted = obs.sink.events_of(TenantEvicted)
        assert [event.tenant for event in evicted] == ["a", "b"]
        assert evicted[0].nbytes > 0

    def test_single_flight_rehydration(self):
        loads = []

        class CountingStore(MemoryCheckpointStore):
            def load(self, tenant, estimator):
                loads.append(tenant)
                time.sleep(0.01)  # widen the race window
                return super().load(tenant, estimator)

        registry = SessionRegistry(make_learner, capacity=4,
                                   store=CountingStore())
        registry.store.save("cold", make_learner())
        barrier = threading.Barrier(4)
        errors = []

        def worker():
            try:
                barrier.wait()
                registry.acquire("cold")
                registry.release("cold")
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert loads == ["cold"]  # one activation served the whole herd
        assert registry.stats()["activations"] == 1

    def test_thread_stress_stays_consistent(self):
        registry = SessionRegistry(make_learner, capacity=3)
        tenants = [f"t{i}" for i in range(8)]
        errors = []

        def worker(seed):
            rng = np.random.default_rng(seed)
            try:
                for _ in range(25):
                    tenant = tenants[rng.integers(len(tenants))]
                    with registry.session(tenant) as estimator:
                        estimator.predict(labeled_rows(2, seed=seed)[0])
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(seed,))
                   for seed in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(registry) <= registry.capacity
        registry.close()  # every pin was released


# -- traffic -------------------------------------------------------------------


class TestTraffic:
    def test_zipf_is_rank_skewed_and_reproducible(self):
        arrivals = zipf_tenants(2000, 50, seed=1)
        assert zipf_tenants(2000, 50, seed=1) == arrivals
        counts = {tenant: arrivals.count(tenant) for tenant in set(arrivals)}
        assert counts["tenant-0000"] == max(counts.values())
        assert len(counts) > 10  # the tail is exercised too

    def test_zipf_validates(self):
        with pytest.raises(ValueError, match="num_tenants"):
            zipf_tenants(10, 0)

    def test_tenant_rows_independent_of_interleaving(self):
        # A tenant's concatenated rows depend only on its own draw count.
        mixed = make_requests(["a", "b", "a", "b", "a"], rows_per_request=4)
        alone = make_requests(["a", "a", "a"], rows_per_request=4)
        mixed_a = np.vstack([x for tenant, x, _y in mixed if tenant == "a"])
        alone_a = np.vstack([x for _tenant, x, _y in alone])
        np.testing.assert_array_equal(mixed_a, alone_a)

    def test_anagram_tenant_names_get_distinct_streams(self):
        # Regression: a byte-sum seed collapsed anagram names onto one
        # stream; the CRC32 seed is order-sensitive.
        x_a, y_a = TenantStream("tenant-0123").draw(16)
        x_b, y_b = TenantStream("tenant-0213").draw(16)
        assert not (np.array_equal(x_a, x_b) and np.array_equal(y_a, y_b))

    def test_stream_replay_is_deterministic(self):
        first = TenantStream("tenant-0042", seed=3)
        second = TenantStream("tenant-0042", seed=3)
        for _ in range(3):
            x_first, y_first = first.draw(8)
            x_second, y_second = second.draw(8)
            np.testing.assert_array_equal(x_first, x_second)
            np.testing.assert_array_equal(y_first, y_second)


# -- streaming service ---------------------------------------------------------


def run_service(config, registry, coroutine_factory, obs=None):
    """Run an async scenario against a started service; returns its result."""

    async def scenario():
        service = StreamingService(config, registry, obs=obs)
        async with service:
            result = await coroutine_factory(service)
        return result, service

    return asyncio.run(scenario())


class TestStreamingService:
    def test_requests_coalesce_into_microbatches(self):
        config = ServeConfig(max_active_tenants=4, microbatch_size=32,
                             microbatch_timeout_s=5.0)
        registry = SessionRegistry(make_learner, capacity=4)

        async def scenario(service):
            x, y = labeled_rows(8)
            return await asyncio.gather(*[
                asyncio.get_running_loop().create_task(
                    service.submit("t", x, y)) for _ in range(4)])

        results, service = run_service(config, registry, scenario)
        assert all(result.accepted for result in results)
        # 4 x 8 rows hit the 32-row target: one coalesced micro-batch.
        assert service.grouping("t") == [4]
        assert {result.batch_index for result in results} == {0}
        assert all(result.group_size == 4 for result in results)

    def test_timeout_flushes_partial_microbatch(self):
        config = ServeConfig(max_active_tenants=4, microbatch_size=1024,
                             microbatch_timeout_s=0.01)
        registry = SessionRegistry(make_learner, capacity=4)

        async def scenario(service):
            x, y = labeled_rows(4)
            return await service.submit("t", x, y)

        result, service = run_service(config, registry, scenario)
        assert result.accepted
        assert service.grouping("t") == [1]  # timer, not count, flushed it

    def test_labeled_and_unlabeled_never_share_a_batch(self):
        config = ServeConfig(max_active_tenants=4, microbatch_size=16,
                             microbatch_timeout_s=5.0)
        registry = SessionRegistry(make_learner, capacity=4)

        async def scenario(service):
            x, y = labeled_rows(8)
            loop = asyncio.get_running_loop()
            tasks = [loop.create_task(service.submit("t", x, y)),
                     loop.create_task(service.submit("t", x)),
                     loop.create_task(service.submit("t", x, y))]
            return await asyncio.gather(*tasks)

        results, service = run_service(config, registry, scenario)
        assert all(result.accepted for result in results)
        # Three batches: the unlabeled request fences its neighbours.
        assert service.grouping("t") == [1, 1, 1]
        assert [result.batch_index for result in results] == [0, 1, 2]

    def test_reject_policy_sheds_over_tenant_bound(self):
        config = ServeConfig(max_active_tenants=4, microbatch_size=1024,
                             microbatch_timeout_s=0.05, shed_policy="reject",
                             max_pending_per_tenant=4)
        registry = SessionRegistry(make_learner, capacity=4)
        x, y = labeled_rows(2)
        results, service = serve_requests(
            config, registry, [("t", x, y)] * 10, window=10)
        shed = [result for result in results if result.status == "shed"]
        assert len(shed) == 6
        assert all(result.reason == "tenant-queue-full" for result in shed)
        assert service.summary()["requests_ok"] == 4

    def test_reject_policy_sheds_over_global_bound(self):
        config = ServeConfig(max_active_tenants=4, microbatch_size=1024,
                             microbatch_timeout_s=0.05, shed_policy="reject",
                             max_pending_per_tenant=2, max_pending_total=2)
        registry = SessionRegistry(make_learner, capacity=4)
        x, y = labeled_rows(2)
        requests = [("a", x, y), ("a", x, y), ("b", x, y)]
        results, _service = serve_requests(config, registry, requests,
                                           window=3)
        assert [result.status for result in results] == ["ok", "ok", "shed"]
        assert results[2].reason == "global-queue-full"

    def test_oldest_policy_displaces_stale_requests(self):
        config = ServeConfig(max_active_tenants=4, microbatch_size=1024,
                             microbatch_timeout_s=0.05, shed_policy="oldest",
                             max_pending_per_tenant=4)
        registry = SessionRegistry(make_learner, capacity=4)
        x, y = labeled_rows(2)
        results, _service = serve_requests(
            config, registry, [("t", x, y)] * 10, window=10)
        displaced = [index for index, result in enumerate(results)
                     if result.status == "shed"]
        assert len(displaced) == 6
        assert all(results[index].reason == "displaced"
                   for index in displaced)
        # Freshness beats age: the six oldest were displaced, the last
        # four submissions were the ones served.
        assert displaced == [0, 1, 2, 3, 4, 5]
        assert all(result.accepted for result in results[6:])

    def test_block_policy_backpressures_instead_of_shedding(self):
        config = ServeConfig(max_active_tenants=4, microbatch_size=4,
                             microbatch_timeout_s=0.005, shed_policy="block",
                             max_pending_per_tenant=2, max_pending_total=4)
        registry = SessionRegistry(make_learner, capacity=4)
        x, y = labeled_rows(2)
        results, service = serve_requests(
            config, registry, [("t", x, y)] * 12, window=12)
        assert all(result.accepted for result in results)
        assert service.summary()["requests_shed"] == 0

    def test_invalid_input_fails_fast(self):
        config = ServeConfig(max_active_tenants=4)
        registry = SessionRegistry(make_learner, capacity=4)

        async def scenario(service):
            bad_nan = await service.submit("t", np.array([[np.nan, 1.0]]))
            bad_empty = await service.submit("t", np.empty((0, 4)))
            x, _y = labeled_rows(4)
            bad_labels = await service.submit("t", x, np.array([1]))
            return bad_nan, bad_empty, bad_labels

        (bad_nan, bad_empty, bad_labels), service = run_service(
            config, registry, scenario)
        for result in (bad_nan, bad_empty, bad_labels):
            assert result.status == "failed"
            assert result.reason.startswith("invalid-input")
        assert service.summary()["requests_failed"] == 3

    def test_breaker_opens_on_repeated_failures(self):
        class ExplodingEstimator:
            def predict(self, x):
                raise RuntimeError("boom")

            def close(self):
                pass

        config = ServeConfig(max_active_tenants=4, microbatch_size=4,
                             microbatch_timeout_s=0.005,
                             breaker_threshold=2, breaker_cooldown=100)
        registry = SessionRegistry(lambda tenant: ExplodingEstimator(),
                                   capacity=4, store=NullCheckpointStore())

        async def scenario(service):
            x, y = labeled_rows(4)
            outcomes = []
            for _ in range(3):
                outcomes.append(await service.submit("t", x, y))
            return outcomes

        outcomes, service = run_service(config, registry, scenario)
        assert [result.status for result in outcomes] == [
            "failed", "failed", "shed"]
        assert outcomes[0].reason.startswith("RuntimeError")
        assert outcomes[2].reason == "circuit-open"
        assert service.summary()["breaker"]["t"]["open"] is True

    def test_pressure_degrades_resident_estimators(self):
        config = ServeConfig(max_active_tenants=4, microbatch_size=4,
                             microbatch_timeout_s=0.005, shed_policy="block",
                             max_pending_per_tenant=8, max_pending_total=8,
                             degrade_high_watermark=0.5,
                             degrade_low_watermark=0.0)
        registry = SessionRegistry(make_learner, capacity=4)
        flips = []

        async def scenario(service):
            original = service._set_degrade

            def spy(value):
                flips.append(value)
                original(value)

            service._set_degrade = spy
            x, y = labeled_rows(2)
            loop = asyncio.get_running_loop()
            tasks = [loop.create_task(service.submit("t", x, y))
                     for _ in range(8)]
            await asyncio.gather(*tasks)
            return service.summary()

        summary, _service = run_service(config, registry, scenario)
        # The pending backlog crossed the high watermark at some point...
        assert flips and flips[0] is True
        # ...and drained back under the low watermark by completion.
        assert summary["degraded"] is False
        with registry.session("t") as estimator:
            assert estimator.degrade is False

    def test_submit_requires_started_service(self):
        config = ServeConfig()
        registry = SessionRegistry(make_learner, capacity=4)
        service = StreamingService(config, registry)
        with pytest.raises(RuntimeError, match="not started"):
            asyncio.run(service.submit("t", labeled_rows(2)[0]))

    def test_shed_events_are_emitted(self):
        obs = Observability.in_memory()
        config = ServeConfig(max_active_tenants=2, microbatch_size=1024,
                             microbatch_timeout_s=0.05, shed_policy="reject",
                             max_pending_per_tenant=2)
        registry = SessionRegistry(make_learner, capacity=2, obs=obs)
        x, y = labeled_rows(2)
        serve_requests(config, registry, [("t", x, y)] * 5, obs=obs,
                       window=5)
        shed = obs.sink.events_of(RequestShed)
        assert len(shed) == 3
        assert all(event.reason == "tenant-queue-full" for event in shed)
        assert obs.sink.events_of(TenantActivated)


# -- serving equivalence -------------------------------------------------------


class TestServingEquivalence:
    def test_served_predictions_match_serial_replay(self):
        # Capacity far below the tenant count forces checkpoint churn;
        # equivalence must survive evict/rehydrate cycles.
        config = ServeConfig(max_active_tenants=4, microbatch_size=16,
                             microbatch_timeout_s=0.01,
                             learner_kwargs={"num_models": 1, "seed": 0})
        registry = SessionRegistry(
            lambda tenant: Learner(lr_factory, **config.learner_kwargs),
            capacity=config.max_active_tenants)
        arrivals = zipf_tenants(120, 16, seed=3)
        requests = make_requests(arrivals, rows_per_request=4,
                                 num_features=NUM_FEATURES,
                                 num_classes=NUM_CLASSES)
        results, service = serve_requests(config, registry, requests,
                                          window=48)
        assert all(result.accepted for result in results)
        by_tenant: dict = {}
        for (tenant, x, y), result in zip(requests, results):
            by_tenant.setdefault(tenant, []).append((x, y, result))
        checked = 0
        for tenant, entries in by_tenant.items():
            grouping = service.grouping(tenant)
            assert sum(grouping) == len(entries)
            replica = Learner(lr_factory, **config.learner_kwargs)
            served = np.concatenate(
                [result.labels for _x, _y, result in entries])
            replayed = []
            cursor = 0
            for group in grouping:
                chunk = entries[cursor:cursor + group]
                cursor += group
                x = np.vstack([entry[0] for entry in chunk])
                y = np.concatenate([entry[1] for entry in chunk])
                replayed.append(predict_and_update(replica, x, y))
            np.testing.assert_array_equal(served,
                                          np.concatenate(replayed))
            checked += 1
        assert checked == len(by_tenant) >= 10


# -- stacked co-scheduling -----------------------------------------------------


def model_factory(_tenant: str = "") -> ModelEstimator:
    return ModelEstimator(StreamingLR(
        num_features=NUM_FEATURES, num_classes=NUM_CLASSES, momentum=0.9,
        seed=3))


class TestStackedServing:
    def serve_stacked(self, requests, *, stacked=True, capacity=8,
                      window=64):
        registry = SessionRegistry(model_factory, capacity=capacity,
                                   store=MemoryCheckpointStore())
        config = ServeConfig(max_active_tenants=capacity, microbatch_size=16,
                             stacked_execution=stacked)
        return serve_requests(config, registry, requests, window=window)

    def test_stacked_serving_matches_serial_replay(self):
        arrivals = zipf_tenants(160, 8, seed=2)
        requests = make_requests(arrivals, rows_per_request=8,
                                 num_features=NUM_FEATURES,
                                 num_classes=NUM_CLASSES, seed=2)
        results, service = self.serve_stacked(requests)
        assert all(result.accepted for result in results)
        assert service.batches_stacked > 0
        assert service.stacked_groups > 0
        assert (service.summary()["batches_stacked"]
                == service.batches_stacked)
        by_tenant: dict = {}
        for (tenant, x, y), result in zip(requests, results):
            by_tenant.setdefault(tenant, []).append((x, y, result))
        for tenant, entries in by_tenant.items():
            grouping = service.grouping(tenant)
            assert sum(grouping) == len(entries)
            replica = model_factory(tenant)
            cursor = 0
            for group in grouping:
                chunk = entries[cursor:cursor + group]
                cursor += group
                x = np.vstack([entry[0] for entry in chunk])
                y = np.concatenate([entry[1] for entry in chunk])
                labels = predict_and_update(replica, x, y)
                offset = 0
                for ex, _ey, result in chunk:
                    np.testing.assert_array_equal(
                        result.labels, labels[offset:offset + len(ex)])
                    offset += len(ex)

    def test_learner_tenants_fall_back_to_serial(self):
        registry = SessionRegistry(make_learner, capacity=4)
        config = ServeConfig(max_active_tenants=4, microbatch_size=8,
                             stacked_execution=True)
        x, y = labeled_rows(8)
        results, service = serve_requests(
            config, registry,
            [("a", x, y), ("b", x, y), ("c", x, y)], window=8)
        assert all(result.accepted for result in results)
        assert service.batches_stacked == 0

    def test_perf_flag_gates_stacked_execution(self):
        arrivals = zipf_tenants(80, 6, seed=4)
        requests = make_requests(arrivals, rows_per_request=8,
                                 num_features=NUM_FEATURES,
                                 num_classes=NUM_CLASSES, seed=4)
        with optimizations_disabled():
            results, service = self.serve_stacked(requests)
        assert all(result.accepted for result in results)
        assert service.batches_stacked == 0
        assert service.stacked_groups == 0

    def test_unlabeled_requests_stack_without_updates(self):
        x = np.full((16, NUM_FEATURES), 0.5)
        results, service = self.serve_stacked(
            [("a", x), ("b", x)], window=2)
        assert all(result.accepted for result in results)
        assert service.batches_stacked == 2
        assert service.stacked_groups == 1
        # Inference-only: no updates, and predictions equal a fresh model's.
        fresh = model_factory()
        for result in results:
            np.testing.assert_array_equal(result.labels, fresh.predict(x))
        for tenant, estimator in service.registry.store._checkpoints.items():
            arrays, _meta = estimator
            assert int(arrays["__meta__.updates"]) == 0

    def test_model_estimator_checkpoint_resumes_mid_momentum(self):
        store = MemoryCheckpointStore()
        original = model_factory()
        x, y = labeled_rows(32, seed=6)
        predict_and_update(original, x, y)
        assert store.save("t", original) > 0
        assert "t" in store
        restored = model_factory()
        assert store.load("t", restored)
        assert restored.model.updates == original.model.updates
        # Identical predictions *and* identical continued training: the
        # velocity buffers round-tripped too.
        x_next, y_next = labeled_rows(32, seed=7)
        np.testing.assert_array_equal(
            predict_and_update(original, x_next, y_next),
            predict_and_update(restored, x_next, y_next))
        probe, _ = labeled_rows(16, seed=8)
        np.testing.assert_array_equal(original.predict(probe),
                                      restored.predict(probe))

    def test_stacked_metrics_emitted(self):
        obs = Observability.in_memory()
        registry = SessionRegistry(model_factory, capacity=4,
                                   store=MemoryCheckpointStore(), obs=obs)
        config = ServeConfig(max_active_tenants=4, microbatch_size=16,
                             stacked_execution=True)
        x, y = labeled_rows(16, seed=9)
        _results, service = serve_requests(
            config, registry, [("a", x, y), ("b", x, y)], obs=obs,
            window=2)
        assert service.batches_stacked == 2
        metrics = obs.registry.snapshot()
        assert "freeway_serving_stacked_batches_total" in metrics


# -- telemetry integration -----------------------------------------------------


class TestServingTelemetry:
    def test_service_summary_feeds_health_endpoint(self):
        obs = Observability.in_memory()
        config = ServeConfig(max_active_tenants=4, microbatch_size=8,
                             microbatch_timeout_s=0.01)
        registry = SessionRegistry(make_learner, capacity=4, obs=obs)
        x, y = labeled_rows(4)
        _results, service = serve_requests(
            config, registry, [("a", x, y), ("b", x, y)], obs=obs)
        with TelemetryServer(obs, health_source=service.summary) as server:
            with urllib.request.urlopen(f"{server.url}/health",
                                        timeout=10) as response:
                health = json.loads(response.read())
        assert health["status"] == "ok"
        assert health["summary"]["requests_ok"] == 2
        assert health["summary"]["registry"]["activations"] == 2
        metrics = obs.registry.snapshot()
        assert "freeway_serving_requests_total" in metrics
        assert "freeway_serving_activations_total" in metrics
