"""Production-style serving loop: checkpoint, crash, restore, continue.

A deployed streaming learner's accumulated state (models, knowledge store,
shift statistics) is the asset; losing it means relearning every regime.
This script runs a serving loop that checkpoints every N batches, simulates
a crash, restores from the last checkpoint, and shows the restored learner
continuing with the same accuracy trajectory — including still *reusing*
knowledge preserved before the crash.

Run:  python examples/serving_with_checkpoints.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import Learner
from repro.core import save_learner, load_learner
from repro.data import NSLKDDSimulator
from repro.models import StreamingMLP

NUM_BATCHES = 90
BATCH_SIZE = 256
CHECKPOINT_EVERY = 10


def model_factory():
    return StreamingMLP(num_features=20, num_classes=5, lr=0.3, seed=0)


def new_learner():
    return Learner(model_factory, window_batches=8, seed=0)


def main():
    checkpoint_dir = Path(tempfile.mkdtemp(prefix="freewayml-"))
    checkpoint = checkpoint_dir / "learner.npz"
    batches = NSLKDDSimulator(seed=11).stream(
        NUM_BATCHES, BATCH_SIZE
    ).materialize()

    crash_at = 2 * NUM_BATCHES // 3
    learner = new_learner()
    accuracies = []
    print(f"serving... (checkpoint every {CHECKPOINT_EVERY} batches, "
          f"simulated crash at batch {crash_at})")
    last_saved = None
    for batch in batches[:crash_at]:
        accuracies.append(learner.process(batch).accuracy)
        if (batch.index + 1) % CHECKPOINT_EVERY == 0:
            size = save_learner(learner, checkpoint)
            last_saved = batch.index
            print(f"  batch {batch.index:3d}: checkpoint written "
                  f"({size / 1024:.0f} KB, acc so far "
                  f"{np.mean(accuracies) * 100:.1f}%)")

    print(f"\n*** crash after batch {crash_at - 1} "
          f"(last checkpoint: batch {last_saved}) ***\n")

    restored = load_learner(new_learner(), checkpoint)
    print(f"restored: {len(restored.knowledge)} knowledge entries, "
          f"{len(restored.experience)} experience points, "
          f"batch counter {restored._batch_counter}")

    # Replay the batches after the checkpoint, then continue the stream.
    resumed_accuracy = []
    reuse_events = 0
    for batch in batches[last_saved + 1:]:
        report = restored.process(batch)
        resumed_accuracy.append(report.accuracy)
        if report.reused_batch is not None:
            reuse_events += 1
    print(f"resumed over {len(resumed_accuracy)} batches: "
          f"G_acc {np.mean(resumed_accuracy) * 100:.2f}%, "
          f"{reuse_events} knowledge-reuse events "
          f"(knowledge from before the crash still pays off)")

    # Reference: a cold restart without the checkpoint.
    cold = new_learner()
    cold_accuracy = [cold.process(batch).accuracy
                     for batch in batches[last_saved + 1:]]
    print(f"cold restart over the same batches: "
          f"G_acc {np.mean(cold_accuracy) * 100:.2f}%")
    print(f"checkpoint advantage: "
          f"{(np.mean(resumed_accuracy) - np.mean(cold_accuracy)) * 100:+.1f} "
          f"points")


if __name__ == "__main__":
    main()
