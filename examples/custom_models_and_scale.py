"""Bring-your-own-model and scale-out: FreewayML beyond the MLP.

FreewayML wraps any :class:`~repro.models.base.StreamingModel`.  This
script runs three very different learners through the same pipeline —
a gradient-based MLP, a statistics-based Gaussian naive Bayes, and a
Hoeffding tree — on the same drifting stream, then shards the stream
across a 4-worker deployment on the forked-process execution backend
(all through the ``repro`` facade: ``FreewayML`` + ``make_learner``).

Run:  python examples/custom_models_and_scale.py
"""

import numpy as np

from repro import FreewayML, make_learner
from repro.data import NSLKDDSimulator
from repro.distributed import ProcessBackend
from repro.models import (
    StreamingHoeffdingTree,
    StreamingMLP,
    StreamingNaiveBayes,
)

NUM_BATCHES = 60
BATCH_SIZE = 256

FACTORIES = {
    "Streaming MLP": lambda: StreamingMLP(num_features=20, num_classes=5,
                                          lr=0.3, seed=0),
    "Gaussian naive Bayes": lambda: StreamingNaiveBayes(
        num_features=20, num_classes=5, decay=0.9),
    "Hoeffding tree": lambda: StreamingHoeffdingTree(
        num_features=20, num_classes=5, grace_period=200),
}


def main():
    print(f"{'model':>22s}  {'plain G_acc':>11s}  {'FreewayML G_acc':>15s}")
    for name, factory in FACTORIES.items():
        plain = factory()
        plain_accuracy = []
        for batch in NSLKDDSimulator(seed=5).stream(NUM_BATCHES, BATCH_SIZE):
            plain_accuracy.append(
                float((plain.predict(batch.x) == batch.y).mean())
            )
            plain.partial_fit(batch.x, batch.y)

        learner = FreewayML(factory, window_batches=8, seed=0)
        freeway_accuracy = [
            learner.process(batch).accuracy
            for batch in NSLKDDSimulator(seed=5).stream(NUM_BATCHES,
                                                        BATCH_SIZE)
        ]
        print(f"{name:>22s}  {np.mean(plain_accuracy) * 100:10.2f}%  "
              f"{np.mean(freeway_accuracy) * 100:14.2f}%")

    # Fork-based workers need the fork start method (Linux/macOS); fall
    # back to the thread backend elsewhere.
    backend = "process" if ProcessBackend.available() else "thread"
    print(f"\nscale-out ({backend} backend, parameter averaging every "
          f"batch):")
    for workers in (1, 4):
        cluster = make_learner(
            FACTORIES["Streaming MLP"],
            num_workers=workers, backend="serial" if workers == 1 else backend,
            sync_every=1, window_batches=8, seed=0,
        )
        stream = NSLKDDSimulator(seed=5).stream(NUM_BATCHES, BATCH_SIZE)
        if workers == 1:  # make_learner returned a plain FreewayML learner
            reports = cluster.run(stream)
            accuracy = np.mean([report.accuracy for report in reports])
            print(f"  {workers} worker(s): G_acc {accuracy * 100:.2f}%")
            continue
        with cluster:
            reports = cluster.run(stream)
        accuracy = np.mean([report.accuracy for report in reports])
        speedup = np.mean([report.ideal_speedup for report in reports])
        print(f"  {workers} worker(s): G_acc {accuracy * 100:.2f}%  "
              f"ideal speedup {speedup:.1f}x  "
              f"(backend {reports[0].backend})")


if __name__ == "__main__":
    main()
