"""Shift-graph analysis: visualizing distribution drift (paper Figure 2).

Reduces each mini-batch of three streams to a 2-D PCA point, connects the
points chronologically, and correlates edge lengths (shift magnitudes) with
the real-time accuracy of a streaming MLP — reproducing the paper's
Section III finding that accuracy drops track shift magnitude.

Run:  python examples/shift_graph_analysis.py
"""

import numpy as np

from repro.data import (
    AirlinesSimulator,
    ElectricitySimulator,
    NSLKDDSimulator,
)
from repro.eval import render_series
from repro.models import StreamingMLP
from repro.shift import ShiftGraph

NUM_BATCHES = 80
BATCH_SIZE = 512


def analyze(generator):
    model = StreamingMLP(num_features=generator.num_features,
                         num_classes=generator.num_classes, lr=0.3, seed=0)
    graph = ShiftGraph(warmup_points=BATCH_SIZE)
    accuracies = []
    for batch in generator.stream(NUM_BATCHES, BATCH_SIZE):
        accuracy = float((model.predict(batch.x) == batch.y).mean())
        graph.observe(batch.x, accuracy=accuracy)
        accuracies.append(accuracy)
        model.partial_fit(batch.x, batch.y)
    return graph, np.asarray(accuracies)


def main():
    for generator in (ElectricitySimulator(seed=1), NSLKDDSimulator(seed=1),
                      AirlinesSimulator(seed=1)):
        graph, accuracies = analyze(generator)
        magnitudes = graph.shift_magnitudes
        correlation = graph.accuracy_shift_correlation()
        print(f"=== {generator.name}")
        print(render_series("shift size", magnitudes))
        print(render_series("accuracy", accuracies))
        print(f"  corr(shift magnitude, accuracy drop) = {correlation:+.3f}")
        biggest = np.argsort(magnitudes)[-3:][::-1]
        for edge in biggest:
            drop = accuracies[edge] - accuracies[edge + 1]
            print(f"  shift into batch {edge + 1}: magnitude "
                  f"{magnitudes[edge]:.2f}, accuracy moved "
                  f"{-drop * 100:+.1f} points")
        network = graph.to_networkx()
        print(f"  shift graph: {network.number_of_nodes()} nodes, "
              f"{network.number_of_edges()} edges\n")


if __name__ == "__main__":
    main()
