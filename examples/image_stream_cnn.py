"""Image-stream scenario: FreewayML around a Streaming CNN (paper appendix).

Runs the appendix pipeline on the synthetic "Animals" image stream: a
five-layer-style CNN as the streaming model, with a frozen feature
extractor (random projection standing in for VGG-16) in front of coherent
experience clustering.  Compares against the plain Streaming CNN.

Run:  python examples/image_stream_cnn.py
"""

import numpy as np

from repro import Learner
from repro.data import AnimalsStream, RandomProjectionFeaturizer
from repro.models import StreamingCNN

NUM_BATCHES = 30
BATCH_SIZE = 64


def main():
    stream_gen = AnimalsStream(seed=3)

    def model_factory():
        return StreamingCNN(input_shape=(1, 16, 16),
                            num_classes=stream_gen.num_classes,
                            lr=0.1, seed=0, image_channels=16)

    batches = stream_gen.stream(NUM_BATCHES, BATCH_SIZE).materialize()

    plain = model_factory()
    plain_accuracy = []
    for batch in batches:
        plain_accuracy.append(
            float((plain.predict(batch.x) == batch.y).mean())
        )
        plain.partial_fit(batch.x, batch.y)

    featurizer = RandomProjectionFeaturizer(
        stream_gen.num_features, output_features=64, seed=0
    )
    learner = Learner(model_factory, window_batches=4,
                      featurizer=featurizer, seed=0)
    reports = [learner.process(batch) for batch in batches]
    freeway_accuracy = [report.accuracy for report in reports]

    print(f"{'batch':>6s} {'pattern':>12s} {'strategy':>18s} "
          f"{'FreewayML':>10s} {'plain CNN':>10s}")
    for index in range(0, NUM_BATCHES, 4):
        batch, report = batches[index], reports[index]
        print(f"{index:>6d} {str(batch.pattern):>12s} "
              f"{report.strategy:>18s} {report.accuracy * 100:9.1f}% "
              f"{plain_accuracy[index] * 100:9.1f}%")

    print(f"\nG_acc  FreewayML {np.mean(freeway_accuracy) * 100:.2f}%  "
          f"plain {np.mean(plain_accuracy) * 100:.2f}%")
    parameters = model_factory().num_parameters()
    print(f"CNN parameters per granularity model: {parameters:,}")


if __name__ == "__main__":
    main()
