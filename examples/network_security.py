"""Network-security scenario: alternating attack campaigns (Pattern C).

The paper's motivating example for historical knowledge reuse: intrusion
traffic alternates between attack regimes (normal → DoS wave → back to
normal → probe wave → DoS again ...).  A plain streaming model relearns
each regime from scratch every time it returns — catastrophic forgetting —
while FreewayML matches the reoccurring distribution against its knowledge
store and restores the model it had.

This script runs both learners over the NSL-KDD simulator, prints accuracy
around every severe shift, and summarizes the per-strategy advantage.

Run:  python examples/network_security.py
"""

import numpy as np

from repro import Learner
from repro.core import Strategy
from repro.data import NSLKDDSimulator, Pattern
from repro.models import StreamingMLP

NUM_BATCHES = 120
BATCH_SIZE = 512


def model_factory():
    return StreamingMLP(num_features=20, num_classes=5, lr=0.3, seed=0)


def main():
    generator = NSLKDDSimulator(seed=7)
    batches = generator.stream(NUM_BATCHES, BATCH_SIZE).materialize()

    plain = model_factory()
    plain_accuracy = []
    for batch in batches:
        plain_accuracy.append(
            float((plain.predict(batch.x) == batch.y).mean())
        )
        plain.partial_fit(batch.x, batch.y)

    learner = Learner(model_factory, window_batches=8,
                      knowledge_capacity=20, seed=0)
    reports = [learner.process(batch) for batch in batches]

    print("Accuracy at severe shifts (attack campaign boundaries):")
    print(f"{'batch':>6s} {'ground truth':>13s} {'strategy':>17s} "
          f"{'FreewayML':>10s} {'plain MLP':>10s}")
    for index, (batch, report) in enumerate(zip(batches, reports)):
        if batch.pattern in (Pattern.SUDDEN, Pattern.REOCCURRING):
            print(f"{index:>6d} {batch.pattern:>13s} {report.strategy:>17s} "
                  f"{report.accuracy * 100:9.1f}% "
                  f"{plain_accuracy[index] * 100:9.1f}%")

    freeway_accuracy = [report.accuracy for report in reports]
    print(f"\noverall   FreewayML G_acc {np.mean(freeway_accuracy) * 100:.2f}%"
          f"   plain G_acc {np.mean(plain_accuracy) * 100:.2f}%")

    reuse = [(report.accuracy, plain_accuracy[index])
             for index, report in enumerate(reports)
             if report.strategy == Strategy.KNOWLEDGE_REUSE.value]
    if reuse:
        freeway_mean, plain_mean = np.mean(reuse, axis=0)
        print(f"on the {len(reuse)} knowledge-reuse batches: "
              f"FreewayML {freeway_mean * 100:.1f}% vs "
              f"plain {plain_mean * 100:.1f}% "
              f"(+{(freeway_mean - plain_mean) * 100:.1f} points)")
    print(f"knowledge store: {len(learner.knowledge)} entries in memory, "
          f"{learner.knowledge.total_nbytes() / 1024:.1f} KB")


if __name__ == "__main__":
    main()
