"""Quickstart: FreewayML on a drifting stream in ~30 lines.

Builds a FreewayML learner around a Streaming MLP (the paper's interface),
runs it prequentially over the Electricity simulator, and prints the
metrics the paper reports: global average accuracy (G_acc) and the
Stability Index (SI), next to a plain streaming MLP baseline.

Run:  python examples/quickstart.py
"""

from repro import Learner
from repro.data import ElectricitySimulator
from repro.metrics import evaluate_learner, evaluate_model
from repro.models import StreamingMLP

NUM_BATCHES = 80
BATCH_SIZE = 512


def model_factory():
    """One fresh Streaming MLP; FreewayML clones one per granularity level."""
    return StreamingMLP(num_features=8, num_classes=2, lr=0.3, seed=0)


def main():
    generator = ElectricitySimulator(seed=42)

    # Plain streaming MLP: one incremental update per mini-batch.
    plain = evaluate_model(
        model_factory(), generator.stream(NUM_BATCHES, BATCH_SIZE),
        name="streaming-mlp",
    )

    # FreewayML: same model, wrapped with the adaptive mechanisms.
    learner = Learner(
        model_factory,
        num_models=2,            # ModelNum: short + long granularity
        window_batches=8,        # adaptive streaming window capacity
        knowledge_capacity=20,   # KdgBuffer
        experience_expiration=10,  # ExpBuffer
        alpha=1.96,
        seed=0,
    )
    freeway = evaluate_learner(
        learner, generator.stream(NUM_BATCHES, BATCH_SIZE),
    )

    print(f"{'framework':>15s}  {'G_acc':>7s}  {'SI':>6s}")
    for result in (plain, freeway):
        print(f"{result.name:>15s}  {result.g_acc * 100:6.2f}%  "
              f"{result.si:5.3f}")

    strategies = {}
    for report in freeway.extras["reports"]:
        strategies[report.strategy] = strategies.get(report.strategy, 0) + 1
    print("\nFreewayML strategy usage:", strategies)
    print(f"knowledge entries preserved: {learner.knowledge.preserved_total}")


if __name__ == "__main__":
    main()
