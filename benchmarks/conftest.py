"""Shared configuration and helpers for the benchmark harness.

Every file in this directory regenerates one table or figure from the
paper's evaluation (see DESIGN.md's per-experiment index).  Benchmarks are
macro experiments — each is executed once via ``benchmark.pedantic`` and
prints the regenerated rows/series; pytest-benchmark records the wall time.

Run them with::

    pytest benchmarks/ --benchmark-only -s
"""

import numpy as np
import pytest

from repro.data import all_benchmark_datasets

#: Batches per prequential run.  The paper streams full datasets; these
#: sizes keep the whole harness laptop-fast while preserving every shape
#: the paper reports.
NUM_BATCHES = 60
BATCH_SIZE = 256
SEED = 3


@pytest.fixture(scope="session")
def datasets():
    """The paper's six-dataset benchmark lineup."""
    return all_benchmark_datasets(seed=SEED)


def print_banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def si(series) -> float:
    series = np.asarray(series, dtype=float)
    return float(np.exp(-series.std() / series.mean()))
