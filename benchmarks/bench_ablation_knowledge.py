"""Ablation — disorder-gated knowledge preservation vs alternatives.

Section IV-D motivates *when* to preserve: checkpointing at every window
end with disorder gating balances store churn against match quality.  This
ablation compares three policies on a reoccurring-shift stream:

- ``gated``   — the paper's rule (long always, short when disorder < beta);
- ``none``    — never preserve (knowledge reuse can never fire);
- ``every``   — preserve both models every single batch (max churn: the
  bounded KdgBuffer evicts aggressively, so old regimes may be gone when
  they reoccur).
"""

import numpy as np

from conftest import SEED, print_banner
from repro.core import Learner
from repro.data import NSLKDDSimulator
from repro.eval import format_table, model_factory_for

NUM_BATCHES = 90
BATCH_SIZE = 256


class _NoPreserveLearner(Learner):
    def _maybe_preserve(self, infos, embedding):
        pass


class _PreserveEveryBatchLearner(Learner):
    def _maybe_preserve(self, infos, embedding):
        short = self.ensemble.short_level
        if not short.trained:
            return
        self.knowledge.preserve(embedding, short.model.state_dict(),
                                "short", 0.0, self._batch_counter)
        for level in self.ensemble.long_levels:
            if level.trained:
                reference = level.reference_embedding()
                self.knowledge.preserve(
                    reference if reference is not None else embedding,
                    level.model.state_dict(), "long", 0.0,
                    self._batch_counter,
                )


def _run(learner_cls):
    generator = NSLKDDSimulator(seed=SEED)
    factory = model_factory_for("mlp", generator.num_features,
                                generator.num_classes, lr=0.3)
    learner = learner_cls(factory, window_batches=8, knowledge_capacity=20,
                          seed=SEED)
    accuracies = [
        learner.process(batch).accuracy
        for batch in generator.stream(NUM_BATCHES, BATCH_SIZE)
    ]
    return float(np.mean(accuracies)), learner.knowledge


def test_ablation_knowledge_preservation(benchmark):
    def run():
        return {
            "gated (paper)": _run(Learner),
            "never preserve": _run(_NoPreserveLearner),
            "every batch": _run(_PreserveEveryBatchLearner),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Ablation: knowledge preservation policy")
    rows = []
    for name, (accuracy, store) in results.items():
        rows.append([
            name, f"{accuracy * 100:.2f}%", str(store.preserved_total),
            str(store.spilled_total),
            f"{store.total_nbytes() / 1024:.0f} KB",
        ])
    print(format_table(
        ["policy", "G_acc", "preserved", "evicted", "resident size"], rows
    ))

    gated_accuracy = results["gated (paper)"][0]
    none_accuracy = results["never preserve"][0]
    every_store = results["every batch"][1]
    gated_store = results["gated (paper)"][1]
    print(f"\ngated vs never: {(gated_accuracy - none_accuracy) * 100:+.2f} "
          f"points; churn {gated_store.preserved_total} vs "
          f"{every_store.preserved_total} checkpoints")
    # Preserving knowledge must beat never preserving, at a fraction of the
    # churn of checkpointing every batch.
    assert gated_accuracy > none_accuracy
    assert gated_store.preserved_total < every_store.preserved_total / 3
    benchmark.extra_info["gain_vs_none"] = round(
        (gated_accuracy - none_accuracy) * 100, 2
    )
