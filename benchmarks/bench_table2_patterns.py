"""Table II — accuracy improvement vs plain Streaming MLP per shift pattern.

Paper claim (shape): improvements exist under every pattern and are ordered
slight < sudden < reoccurring (the mechanisms matter most exactly where a
plain model collapses — e.g. Hyperplane +5.7 / +34.1 / +59.3).
"""

import numpy as np

from conftest import BATCH_SIZE, SEED, print_banner
from repro.data import Pattern, all_benchmark_datasets
from repro.eval import RunConfig, format_table, run_framework

NUM_BATCHES = 80


def _per_pattern_gap(generator):
    config = RunConfig(num_batches=NUM_BATCHES, batch_size=BATCH_SIZE,
                       model="mlp", seed=SEED)
    plain = run_framework("plain", generator, config)
    freeway = run_framework("freewayml", generator, config)
    gaps = {}
    for pattern in Pattern.ALL:
        plain_by = plain.accuracy_by_pattern().get(pattern)
        freeway_by = freeway.accuracy_by_pattern().get(pattern)
        if plain_by is not None and freeway_by is not None:
            gaps[pattern] = (freeway_by - plain_by) * 100
    return gaps


def test_table2_pattern_improvements(benchmark, datasets):
    def run():
        return {name: _per_pattern_gap(generator)
                for name, generator in datasets.items()}

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner(
        "Table II: FreewayML accuracy improvement vs plain StreamingMLP "
        "(points), per ground-truth pattern"
    )
    rows = []
    for name, per_pattern in gaps.items():
        rows.append([
            name,
            *(f"{per_pattern[p]:+.1f}" if p in per_pattern else "n/a"
              for p in Pattern.ALL),
        ])
    print(format_table(["dataset", "slight", "sudden", "reoccurring"], rows))

    # Shape check on the four simulators that exhibit all three patterns:
    # reoccurring improvements dominate, and severe-pattern improvements
    # exceed slight-pattern ones.
    simulators = ("airlines", "covertype", "nsl-kdd", "electricity")
    reoccurring = [gaps[n]["reoccurring"] for n in simulators
                   if "reoccurring" in gaps[n]]
    slight = [gaps[n]["slight"] for n in simulators if "slight" in gaps[n]]
    assert np.mean(reoccurring) > 20.0
    assert np.mean(reoccurring) > np.mean(slight)
    benchmark.extra_info["mean_reoccurring_gain"] = round(
        float(np.mean(reoccurring)), 1
    )
