"""Robustness — the headline claim across random seeds.

Every other bench fixes one seed; this one re-rolls the datasets (drift
schedules, concept placements) and the model initialization across three
seeds and checks that FreewayML's advantage over the plain streaming MLP
is a property of the method, not of a lucky stream.
"""

import numpy as np

from conftest import BATCH_SIZE, print_banner
from repro.data import all_benchmark_datasets
from repro.eval import RunConfig, format_table, run_framework

SEEDS = [3, 7, 11]
NUM_BATCHES = 100


def test_multiseed_headline(benchmark):
    def run():
        deltas = {}
        for seed in SEEDS:
            config = RunConfig(num_batches=NUM_BATCHES,
                               batch_size=BATCH_SIZE, model="mlp", seed=seed)
            for name, generator in all_benchmark_datasets(seed=seed).items():
                plain = run_framework("plain", generator, config)
                freeway = run_framework("freewayml", generator, config)
                deltas.setdefault(name, []).append(
                    freeway.g_acc - plain.g_acc
                )
        return deltas

    deltas = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner(
        f"Multi-seed robustness: FreewayML - plain MLP (points), "
        f"seeds {SEEDS}"
    )
    rows = []
    for name, values in deltas.items():
        values = np.asarray(values) * 100
        rows.append([
            name,
            *(f"{value:+.1f}" for value in values),
            f"{values.mean():+.2f}",
        ])
    print(format_table(
        ["dataset", *(f"seed {seed}" for seed in SEEDS), "mean"], rows
    ))

    per_seed_mean = np.asarray([
        np.mean([deltas[name][position] for name in deltas])
        for position in range(len(SEEDS))
    ]) * 100
    print(f"\nmean improvement per seed: "
          + "  ".join(f"{value:+.2f}" for value in per_seed_mean))
    benchmark.extra_info["mean_delta_points"] = round(
        float(per_seed_mean.mean()), 2
    )
    # The headline: on the severe-shift simulators the improvement is
    # positive for EVERY seed (hyperplane/sea are concept-only streams
    # where the paper's mechanisms have little to grab — see
    # EXPERIMENTS.md deviations — so they enter the print-out but not the
    # assertion).
    simulators = ("airlines", "covertype", "nsl-kdd", "electricity")
    per_seed_simulators = np.asarray([
        np.mean([deltas[name][position] for name in simulators])
        for position in range(len(SEEDS))
    ]) * 100
    print("simulator-only mean per seed: "
          + "  ".join(f"{value:+.2f}" for value in per_seed_simulators))
    assert (per_seed_simulators > 0).all()
    assert per_seed_simulators.mean() > 1.0