"""Figure 11 — FreewayML vs existing methods under the three patterns.

Paper claim (shape): FreewayML's per-pattern accuracy beats every baseline,
with the largest margins under sudden and reoccurring shifts.

Uses the canonical pattern-mix schedule (directional + localized + sudden +
reoccurring segments with ground truth attached) so every framework is
scored on identical, annotated batches.
"""

import numpy as np

from conftest import print_banner
from repro.data import Pattern, pattern_mix_schedule, stream_from_schedule
from repro.eval import RunConfig, format_table, run_framework

FRAMEWORKS = ["river", "camel", "a-gem", "freewayml"]
BATCH_SIZE = 256


class _ScheduleGenerator:
    """Adapter exposing the pattern-mix schedule as a dataset generator."""

    name = "pattern-mix"
    num_features = 16
    num_classes = 4

    def __init__(self, seed):
        self.seed = seed

    def stream(self, num_batches, batch_size=BATCH_SIZE):
        rng = np.random.default_rng(self.seed)
        concepts, segments = pattern_mix_schedule(
            rng, num_classes=self.num_classes,
            num_features=self.num_features, segment_length=12,
        )
        return stream_from_schedule(
            concepts, segments, batch_size, rng,
            num_classes=self.num_classes, name=self.name,
        ).take(num_batches)


def test_fig11_per_pattern_accuracy(benchmark):
    total = 80
    config = RunConfig(num_batches=total, batch_size=BATCH_SIZE,
                       model="mlp", seed=0)

    def run():
        return {
            framework: run_framework(framework, _ScheduleGenerator(seed=0),
                                     config)
            for framework in FRAMEWORKS
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Figure 11: per-pattern accuracy (%) per framework")
    per_pattern = {
        framework: result.accuracy_by_pattern(skip=2)
        for framework, result in results.items()
    }
    rows = [
        [framework] + [
            f"{per_pattern[framework].get(pattern, float('nan')) * 100:.1f}"
            for pattern in Pattern.ALL
        ]
        for framework in FRAMEWORKS
    ]
    print(format_table(["framework", "slight", "sudden", "reoccurring"],
                       rows))

    freeway = per_pattern["freewayml"]
    baselines = [per_pattern[name] for name in FRAMEWORKS if name != "freewayml"]
    # Shape checks: FreewayML leads under both severe patterns, with a
    # clear margin on reoccurring shifts.
    for pattern in (Pattern.SUDDEN, Pattern.REOCCURRING):
        best_baseline = max(b.get(pattern, 0.0) for b in baselines)
        assert freeway[pattern] >= best_baseline - 0.02, pattern
    best_reoccurring = max(b.get(Pattern.REOCCURRING, 0.0)
                           for b in baselines)
    assert freeway[Pattern.REOCCURRING] > best_reoccurring + 0.05
    benchmark.extra_info["freeway_reoccurring"] = round(
        freeway[Pattern.REOCCURRING] * 100, 1
    )
