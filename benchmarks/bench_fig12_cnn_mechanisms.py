"""Figure 12 (appendix) — CNN mechanism curves on tabular + image streams.

Paper claim (shape): the three mechanisms lift the StreamingCNN baseline
the same way they lift the MLP (Figure 9): the ensemble keeps the slight-
shift stretches steady, CEC and knowledge reuse rescue the severe regions
— including on image streams, where CEC clusters frozen features.
"""

import numpy as np

from conftest import SEED, print_banner
from repro.core import Learner
from repro.data import (
    AnimalsStream,
    ElectricitySimulator,
    FlowersStream,
    NSLKDDSimulator,
    Pattern,
    RandomProjectionFeaturizer,
)
from repro.eval import render_series
from repro.models import StreamingCNN

TABULAR = [NSLKDDSimulator, ElectricitySimulator]
IMAGES = [AnimalsStream, FlowersStream]


def _run_tabular(generator_cls):
    generator = generator_cls(seed=SEED)
    batches = generator.stream(50, 256).materialize()

    def factory():
        return StreamingCNN(input_shape=(generator.num_features,),
                            num_classes=generator.num_classes,
                            lr=0.1, seed=0)

    return _compare(batches, factory, featurizer=None)


def _run_image(stream_cls):
    generator = stream_cls(seed=SEED)
    batches = generator.stream(30, 64).materialize()

    def factory():
        return StreamingCNN(input_shape=(1, 16, 16),
                            num_classes=generator.num_classes,
                            lr=0.1, seed=0, image_channels=16)

    featurizer = RandomProjectionFeaturizer(generator.num_features, 64,
                                            seed=0)
    return _compare(batches, factory, featurizer=featurizer)


def _compare(batches, factory, featurizer):
    plain = factory()
    plain_accuracy = []
    for batch in batches:
        plain_accuracy.append(float((plain.predict(batch.x)
                                     == batch.y).mean()))
        plain.partial_fit(batch.x, batch.y)
    learner = Learner(factory, window_batches=4, featurizer=featurizer,
                      seed=SEED)
    reports = [learner.process(batch) for batch in batches]
    return batches, reports, plain_accuracy


def test_fig12_cnn_mechanism_curves(benchmark):
    def run():
        results = {cls.name: _run_tabular(cls) for cls in TABULAR}
        results.update({cls.name: _run_image(cls) for cls in IMAGES})
        return results

    runs = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Figure 12: CNN + FreewayML mechanisms vs StreamingCNN")
    gains = []
    for name, (batches, reports, plain_accuracy) in runs.items():
        freeway_accuracy = [report.accuracy for report in reports]
        gain = float(np.mean(freeway_accuracy) - np.mean(plain_accuracy))
        gains.append(gain)
        print(f"\n--- {name}  (G_acc gain {gain * 100:+.1f} points)")
        print(render_series("StreamingCNN", plain_accuracy))
        print(render_series("FreewayML", freeway_accuracy))
        markers = "".join(
            {"multi_granularity": ".", "cec": "C",
             "knowledge_reuse": "K"}[report.strategy]
            for report in reports
        )
        print(f"{'strategy':>14s} [{markers}]")
        benchmark.extra_info[f"gain_{name}"] = round(gain * 100, 1)

    # Shape check: mechanisms help on average, on tabular and image alike.
    assert float(np.mean(gains)) > 0.01
    assert sum(gain > 0 for gain in gains) >= 3
