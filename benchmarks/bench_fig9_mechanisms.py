"""Figure 9 — per-batch accuracy of FreewayML's mechanisms vs plain MLP.

Paper claim (shape): on four real datasets, the multi-granularity ensemble
tracks or beats the baseline through slight-shift stretches, while CEC and
knowledge reuse produce visible accuracy rescues exactly in the sudden /
reoccurring regions where the dashed baseline curve craters.
"""

import numpy as np

from conftest import BATCH_SIZE, SEED, print_banner
from repro.core import Learner
from repro.data import (
    AirlinesSimulator,
    CovertypeSimulator,
    ElectricitySimulator,
    NSLKDDSimulator,
    Pattern,
)
from repro.eval import model_factory_for, render_series

NUM_BATCHES = 80
DATASETS = [AirlinesSimulator, CovertypeSimulator, NSLKDDSimulator,
            ElectricitySimulator]


def _run_one(generator_cls):
    generator = generator_cls(seed=SEED)
    batches = generator.stream(NUM_BATCHES, BATCH_SIZE).materialize()
    factory = model_factory_for("mlp", generator.num_features,
                                generator.num_classes, lr=0.3)

    plain = factory()
    plain_accuracy = []
    for batch in batches:
        plain_accuracy.append(float((plain.predict(batch.x)
                                     == batch.y).mean()))
        plain.partial_fit(batch.x, batch.y)

    learner = Learner(factory, window_batches=8, seed=SEED)
    reports = [learner.process(batch) for batch in batches]
    return batches, reports, plain_accuracy


def test_fig9_mechanism_curves(benchmark):
    def run():
        return {cls.name: _run_one(cls) for cls in DATASETS}

    runs = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Figure 9: FreewayML mechanisms vs plain StreamingMLP")

    from pathlib import Path

    from repro.eval import line_chart_svg, save_svg
    artifact_dir = Path(__file__).resolve().parent.parent / "artifacts"

    rescue_gaps = []
    for name, (batches, reports, plain_accuracy) in runs.items():
        freeway_accuracy = [report.accuracy for report in reports]
        svg = line_chart_svg(
            {"plain MLP": plain_accuracy, "FreewayML": freeway_accuracy},
            title=f"Figure 9: {name}", dashed={"plain MLP"},
        )
        save_svg(svg, artifact_dir / f"fig9_{name}.svg")
        print(f"\n--- {name}")
        print(render_series("plain MLP", plain_accuracy))
        print(render_series("FreewayML", freeway_accuracy))
        markers = "".join(
            {"multi_granularity": ".", "cec": "C",
             "knowledge_reuse": "K"}[report.strategy]
            for report in reports
        )
        print(f"{'strategy':>14s} [{markers}]")
        # Rescue gap: mean advantage on severe-region batches.
        severe = [
            (freeway_accuracy[i] - plain_accuracy[i])
            for i, batch in enumerate(batches)
            if batch.pattern in (Pattern.SUDDEN, Pattern.REOCCURRING)
        ]
        if severe:
            gap = float(np.mean(severe))
            rescue_gaps.append(gap)
            print(f"  severe-region advantage: {gap * 100:+.1f} points "
                  f"over {len(severe)} batches")
            benchmark.extra_info[f"rescue_{name}"] = round(gap * 100, 1)

    # Shape check: the mechanisms rescue accuracy in severe regions.
    assert rescue_gaps
    assert float(np.mean(rescue_gaps)) > 0.1
