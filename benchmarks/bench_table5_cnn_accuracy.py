"""Table V (appendix) — StreamingCNN vs FreewayML on eight datasets.

Paper claim (shape): wrapping the CNN with FreewayML's mechanisms improves
G_acc on all six tabular benchmarks (~+5 points average) and on both image
streams (~+4 points average), with higher SI throughout.
"""

import numpy as np

from conftest import SEED, print_banner
from repro.core import Learner
from repro.data import (
    IMAGE_REGISTRY,
    RandomProjectionFeaturizer,
    all_benchmark_datasets,
)
from repro.eval import format_table
from repro.metrics import evaluate_learner, evaluate_model
from repro.models import StreamingCNN

TABULAR_BATCHES = 50
TABULAR_BATCH_SIZE = 256
IMAGE_BATCHES = 30
IMAGE_BATCH_SIZE = 64


def _run_tabular(generator):
    def factory():
        return StreamingCNN(input_shape=(generator.num_features,),
                            num_classes=generator.num_classes,
                            lr=0.1, seed=0)

    plain = evaluate_model(
        factory(), generator.stream(TABULAR_BATCHES, TABULAR_BATCH_SIZE),
        name="streaming-cnn",
    )
    learner = Learner(factory, window_batches=8, seed=SEED)
    freeway = evaluate_learner(
        learner, generator.stream(TABULAR_BATCHES, TABULAR_BATCH_SIZE),
    )
    return plain, freeway


def _run_image(stream_cls):
    generator = stream_cls(seed=SEED)

    def factory():
        return StreamingCNN(input_shape=(1, 16, 16),
                            num_classes=generator.num_classes,
                            lr=0.1, seed=0, image_channels=16)

    plain = evaluate_model(
        factory(), generator.stream(IMAGE_BATCHES, IMAGE_BATCH_SIZE),
        name="streaming-cnn",
    )
    featurizer = RandomProjectionFeaturizer(generator.num_features, 64,
                                            seed=0)
    learner = Learner(factory, window_batches=4, featurizer=featurizer,
                      seed=SEED)
    freeway = evaluate_learner(
        learner, generator.stream(IMAGE_BATCHES, IMAGE_BATCH_SIZE),
    )
    return plain, freeway


def test_table5_cnn_accuracy(benchmark, datasets):
    def run():
        results = {name: _run_tabular(generator)
                   for name, generator in datasets.items()}
        for name, stream_cls in IMAGE_REGISTRY.items():
            results[name] = _run_image(stream_cls)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Table V: StreamingCNN vs FreewayML (G_acc / SI)")
    rows = []
    gains = []
    for name, (plain, freeway) in results.items():
        gains.append(freeway.g_acc - plain.g_acc)
        rows.append([
            name,
            f"{plain.g_acc * 100:.2f}%", f"{plain.si:.3f}",
            f"{freeway.g_acc * 100:.2f}%", f"{freeway.si:.3f}",
            f"{(freeway.g_acc - plain.g_acc) * 100:+.1f}",
        ])
    print(format_table(
        ["dataset", "CNN G_acc", "CNN SI", "FreewayML G_acc",
         "FreewayML SI", "gain"],
        rows,
    ))
    mean_gain = float(np.mean(gains)) * 100
    wins = sum(gain > 0 for gain in gains)
    print(f"\nFreewayML improves G_acc on {wins}/{len(gains)} datasets; "
          f"mean gain {mean_gain:+.2f} points")
    benchmark.extra_info["wins"] = wins
    benchmark.extra_info["mean_gain_points"] = round(mean_gain, 2)
    assert wins >= len(gains) - 2
    assert mean_gain > 0.5
