"""Perf-regression gate over ``BENCH_hotpath.json``.

``--write`` measures the current tree with ``bench_hotpath`` and stores
the results (plus a machine-speed calibration factor) in
``BENCH_hotpath.json`` at the repository root.  ``--check`` re-measures
and fails (exit 1) if any cell's *normalized* throughput regressed by
more than ``--threshold`` (default 25%).

``--write --only <section-prefix>`` re-measures just the sections whose
name starts with the prefix (``full``, ``smoke``, ``stacked``,
``plans``) and merges them into the existing baseline file, leaving
every other section's cells untouched — so adding one new axis does not
churn (or silently re-bless) the rest of the baseline.

Raw items/s numbers are not comparable across machines, so both write
and check time a fixed numpy workload; throughput is normalized by that
calibration before comparison.  The check stays meaningful on a laptop
or a CI runner alike — it catches "this commit made the hot path slower",
not "this machine is slower".

Usage::

    PYTHONPATH=src python benchmarks/regress.py --write
    PYTHONPATH=src python benchmarks/regress.py --write --only plans
    PYTHONPATH=src python benchmarks/regress.py --check --smoke   # CI job
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from bench_hotpath import (equivalence_gate, run_grid, run_plans_axis,
                           run_stacked_axis)

DEFAULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"
SMOKE_GRID = dict(models=("mlp",), streams=("slight",), num_batches=16,
                  repeats=3)
FULL_GRID = dict(models=("lr", "mlp", "cnn"),
                 streams=("slight", "sudden", "reoccurring"),
                 num_batches=60, repeats=5)
#: One size backs both write and check for the plans axis, so the cells
#: line up; smoke=False keeps the 1.3x MLP floor enforced.
PLANS_AXIS = dict(num_batches=40, repeats=3, smoke=False)

#: Baseline sections, in file order; ``--only`` matches these by prefix.
SECTIONS = ("full", "smoke", "stacked", "plans")


def calibration_seconds(rounds: int = 5) -> float:
    """Median wall-clock of a fixed numpy workload (machine-speed probe).

    The workload mirrors the hot path's mix: small gemms, reductions, and
    elementwise ufuncs on float64.
    """
    rng = np.random.default_rng(0)
    a = rng.normal(size=(256, 64))
    b = rng.normal(size=(64, 64))
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        acc = a
        for _ in range(200):
            acc = np.maximum(acc @ b, 0.0)
            acc = acc - acc.max(axis=1, keepdims=True)
            np.exp(acc).sum()
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]


def _normalized(results: list[dict], calib: float) -> dict:
    """Machine-invariant score per grid cell: items/s x calibration secs."""
    return {
        f"{entry['model']}/{entry['stream']}/{entry['mode']}":
            entry["items_per_s"] * calib
        for entry in results
    }


def _measure(smoke: bool) -> tuple[list[dict], float]:
    grid = SMOKE_GRID if smoke else FULL_GRID
    calib = calibration_seconds()
    results = run_grid(grid["models"], grid["streams"], grid["num_batches"],
                       grid["repeats"])
    return results, calib


def _measure_stacked() -> tuple[list[dict], float, int]:
    """The stacked-engine axis plus its own gates (0 = both passed).

    The same axis backs write and check, so baseline and measurement
    cells always line up.
    """
    calib = calibration_seconds()
    results = run_stacked_axis()
    status = 0
    if any(not entry["equivalent"] for entry in results):
        print("FAIL: stacked and serial execution disagree bitwise",
              file=sys.stderr)
        status = 1
    if any(not entry["meets_floor"] for entry in results):
        print("FAIL: stacked speedup below the 2x floor at N >= 32",
              file=sys.stderr)
        status = 1
    return results, calib, status


def _normalized_stacked(results: list[dict], calib: float) -> dict:
    return {
        f"stacked/{entry['model']}/x{entry['num_models']}":
            entry["stacked_items_per_s"] * calib
        for entry in results
    }


def _measure_plans() -> tuple[list[dict], float, int]:
    """The captured-plan axis plus its own gates (0 = all passed)."""
    calib = calibration_seconds()
    results, status = run_plans_axis(**PLANS_AXIS)
    return results, calib, status


def _normalized_plans(results: list[dict], calib: float) -> dict:
    cells = {}
    for entry in results:
        if entry["axis"] == "plans-stacked":
            key = f"plans-stacked/{entry['model']}/x{entry['num_models']}"
        else:
            key = f"plans/{entry['model']}"
        cells[key] = entry["plans_items_per_s"] * calib
    return cells


def _measure_section(section: str) -> tuple[dict, int]:
    """Measure one baseline section; returns (payload, status)."""
    if section in ("full", "smoke"):
        results, calib = _measure(smoke=(section == "smoke"))
        status = 0
    elif section == "stacked":
        results, calib, status = _measure_stacked()
    else:  # plans
        results, calib, status = _measure_plans()
    return {"calibration_seconds": calib, "results": results}, status


def write(path: pathlib.Path, only: str | None = None) -> int:
    sections = [name for name in SECTIONS
                if only is None or name.startswith(only)]
    if not sections:
        print(f"FAIL: --only {only!r} matches no section; have "
              f"{', '.join(SECTIONS)}", file=sys.stderr)
        return 1
    if only is not None and path.exists():
        payload = json.loads(path.read_text())
    elif only is not None:
        print(f"FAIL: no baseline at {path} to merge --only {only!r} into; "
              f"run a full --write first", file=sys.stderr)
        return 1
    else:
        payload = {"schema": 1}
    if not equivalence_gate():
        print("FAIL: equivalence gate broken; refusing to write a baseline",
              file=sys.stderr)
        return 1
    for section in sections:
        section_payload, status = _measure_section(section)
        if status:
            print("refusing to write a baseline", file=sys.stderr)
            return 1
        payload[section] = section_payload
    path.write_text(json.dumps(payload, indent=2) + "\n")
    verb = "merged into" if only is not None else "wrote"
    print(f"{verb} {path} ({', '.join(sections)})", file=sys.stderr)
    return 0


def check(path: pathlib.Path, smoke: bool, threshold: float) -> int:
    if not path.exists():
        print(f"FAIL: no baseline at {path}; run --write first",
              file=sys.stderr)
        return 1
    baseline = json.loads(path.read_text())
    section = baseline["smoke" if smoke else "full"]
    if not equivalence_gate():
        print("FAIL: optimized and reference modes no longer produce "
              "identical accuracy sequences", file=sys.stderr)
        return 1
    results, calib = _measure(smoke)
    stored = _normalized(section["results"],
                         section["calibration_seconds"])
    current = _normalized(results, calib)
    stacked_section = baseline.get("stacked")
    if stacked_section is not None:
        stacked_results, stacked_calib, status = _measure_stacked()
        if status:
            return 1
        stored.update(_normalized_stacked(
            stacked_section["results"],
            stacked_section["calibration_seconds"]))
        current.update(_normalized_stacked(stacked_results, stacked_calib))
    plans_section = baseline.get("plans")
    if plans_section is not None:
        plans_results, plans_calib, status = _measure_plans()
        if status:
            return 1
        stored.update(_normalized_plans(
            plans_section["results"],
            plans_section["calibration_seconds"]))
        current.update(_normalized_plans(plans_results, plans_calib))
    failures = []
    for cell, reference_score in stored.items():
        score = current.get(cell)
        if score is None:
            continue
        ratio = score / reference_score
        status = "ok" if ratio >= 1.0 - threshold else "REGRESSED"
        print(f"{cell:>28}: {ratio:6.2f}x vs baseline  [{status}]",
              file=sys.stderr)
        if ratio < 1.0 - threshold:
            failures.append((cell, ratio))
    if failures:
        print(f"FAIL: {len(failures)} cell(s) regressed more than "
              f"{threshold:.0%}: "
              + ", ".join(f"{c} ({r:.2f}x)" for c, r in failures),
              file=sys.stderr)
        return 1
    print("perf gate passed", file=sys.stderr)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    action = parser.add_mutually_exclusive_group(required=True)
    action.add_argument("--write", action="store_true",
                        help="measure and store a new baseline")
    action.add_argument("--check", action="store_true",
                        help="measure and compare against the baseline")
    parser.add_argument("--smoke", action="store_true",
                        help="with --check: compare the CI-sized section only")
    parser.add_argument("--only", metavar="SECTION",
                        help="with --write: re-measure only sections whose "
                             "name starts with this prefix and merge them "
                             "into the existing baseline")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional slowdown (default 0.25)")
    parser.add_argument("--path", type=pathlib.Path, default=DEFAULT_PATH,
                        help=f"baseline file (default {DEFAULT_PATH})")
    args = parser.parse_args(argv)
    if args.only and not args.write:
        parser.error("--only requires --write")
    if args.write:
        return write(args.path, only=args.only)
    return check(args.path, args.smoke, args.threshold)


if __name__ == "__main__":
    raise SystemExit(main())
