"""Figure 10 — throughput (items/s) vs batch size for LR and MLP groups.

Paper claim (shape): throughput rises with batch size for every framework;
FreewayML clearly beats the heavyweight baselines (Spark's partition
averaging, Camel's selection, A-GEM's reference gradients) and stays in the
same band as the lightest framework of each group.

Script mode adds an execution-backend axis to the FreewayML rows — the
figure's actual throughput-scaling claim::

    PYTHONPATH=src python benchmarks/bench_fig10_throughput.py \
        --backend thread --workers 4
"""

import argparse

from conftest import print_banner
from repro.baselines import make_baseline
from repro.core import Learner
from repro.data import HyperplaneGenerator
from repro.distributed import DistributedLearner
from repro.eval import format_table, model_factory_for
from repro.metrics import measure_throughput

BATCH_SIZES = [256, 512, 1024, 2048]
LR_FRAMEWORKS = ["flink-ml", "spark-mllib", "alink", "freewayml"]
MLP_FRAMEWORKS = ["river", "camel", "a-gem", "freewayml"]
NUM_BATCHES = 10


def _throughput(framework, model, batch_size, backend="serial", workers=1):
    generator = HyperplaneGenerator(seed=0)
    batches = generator.stream(NUM_BATCHES, batch_size).materialize()
    factory = model_factory_for(model, generator.num_features, 2, lr=0.3)
    if framework == "freewayml":
        if workers > 1 or backend != "serial":
            learner = DistributedLearner(factory, num_workers=workers,
                                         backend=backend, window_batches=4,
                                         seed=0)
            try:
                return measure_throughput(learner.process, batches)
            finally:
                learner.close()
        learner = Learner(factory, window_batches=4, seed=0)
        return measure_throughput(learner.process, batches)
    baseline = make_baseline(framework, factory)

    def process(batch):
        baseline.predict(batch.x)
        baseline.partial_fit(batch.x, batch.y)

    return measure_throughput(process, batches)


def test_fig10_throughput(benchmark):
    def run():
        table = {}
        for model, frameworks in (("lr", LR_FRAMEWORKS),
                                  ("mlp", MLP_FRAMEWORKS)):
            for framework in frameworks:
                for batch_size in BATCH_SIZES:
                    table[(model, framework, batch_size)] = _throughput(
                        framework, model, batch_size
                    )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Figure 10: throughput (K items/s) vs batch size")
    for model, frameworks in (("lr", LR_FRAMEWORKS), ("mlp", MLP_FRAMEWORKS)):
        print(f"\nStreaming{model.upper()}")
        rows = [
            [framework] + [
                f"{table[(model, framework, size)] / 1e3:.0f}"
                for size in BATCH_SIZES
            ]
            for framework in frameworks
        ]
        print(format_table(
            ["framework"] + [str(size) for size in BATCH_SIZES], rows
        ))

    # Shape checks: throughput grows with batch size for the plain LR
    # framework, and FreewayML beats the heavyweight baselines.
    assert (table[("lr", "flink-ml", 2048)]
            > table[("lr", "flink-ml", 256)])
    assert (table[("mlp", "freewayml", 1024)]
            > 0.5 * table[("mlp", "camel", 1024)])
    benchmark.extra_info["freeway_mlp_1024_kitems"] = round(
        table[("mlp", "freewayml", 1024)] / 1e3
    )


# -- script mode: FreewayML throughput per execution backend ------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Figure 10 FreewayML rows with an execution-backend axis"
    )
    parser.add_argument("--backend", default="serial",
                        choices=["serial", "thread", "process"])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--model", default="mlp", choices=["lr", "mlp"])
    args = parser.parse_args(argv)

    print_banner(
        f"Figure 10 (backend axis): Streaming{args.model.upper()} "
        f"FreewayML throughput, K items/s"
    )
    backends = ["serial"]
    if args.backend != "serial":
        backends.append(args.backend)
    rows = []
    for backend in backends:
        workers = 1 if backend == "serial" else args.workers
        rows.append([f"freewayml ({backend} x{workers})"] + [
            f"{_throughput('freewayml', args.model, size, backend=backend, workers=workers) / 1e3:.0f}"
            for size in BATCH_SIZES
        ])
    print(format_table(
        ["configuration"] + [str(size) for size in BATCH_SIZES], rows
    ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
