"""Table VI (appendix) — CNN latency: FreewayML overhead vs plain CNN.

Paper claim (shape): FreewayML's mechanisms add < 5% latency to CNN
inference and updates at every batch size.  Our single-process build pays
more than the paper's multi-process one on updates (the long-granularity
training cannot run in parallel), so the reproduced claims are (a)
near-linear scaling in batch size and (b) small *inference* overhead.
"""

import time

from conftest import print_banner
from repro.core import Learner
from repro.data import HyperplaneGenerator
from repro.eval import format_table
from repro.models import StreamingCNN

BATCH_SIZES = [512, 1024, 2048, 4096]
WARM_BATCHES = 5


def _prepare(freeway: bool, batch_size: int):
    """Warmed-up learner plus cycling distinct evaluation batches."""
    import itertools

    generator = HyperplaneGenerator(seed=0)
    batches = generator.stream(WARM_BATCHES + 8, batch_size).materialize()

    def factory():
        return StreamingCNN(input_shape=(generator.num_features,),
                            num_classes=2, lr=0.1, seed=0)

    pool = itertools.cycle(batches[WARM_BATCHES:])
    if freeway:
        learner = Learner(factory, window_batches=4, seed=0)
        for batch in batches[:WARM_BATCHES]:
            learner.process(batch)
        return (lambda: learner.predict(next(pool).x),
                lambda: learner.update(*(lambda b: (b.x, b.y))(next(pool))))
    model = factory()
    for batch in batches[:WARM_BATCHES]:
        model.partial_fit(batch.x, batch.y)
    return (lambda: model.predict_proba(next(pool).x),
            lambda: model.partial_fit(*(lambda b: (b.x, b.y))(next(pool))))


def _time(fn, rounds=3):
    fn()  # warm
    start = time.perf_counter()
    for _ in range(rounds):
        fn()
    return (time.perf_counter() - start) / rounds * 1e6


def test_table6_cnn_latency(benchmark):
    def run():
        table = {}
        for freeway in (False, True):
            name = "freewayml" if freeway else "streaming-cnn"
            for batch_size in BATCH_SIZES:
                infer, update = _prepare(freeway, batch_size)
                table[(name, "infer", batch_size)] = _time(infer)
                table[(name, "update", batch_size)] = _time(update)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Table VI: CNN latency (µs) per batch")
    for phase in ("infer", "update"):
        print(f"\nCNN_{phase}")
        rows = [
            [name] + [f"{table[(name, phase, size)]:.0f}"
                      for size in BATCH_SIZES]
            for name in ("streaming-cnn", "freewayml")
        ]
        print(format_table(
            ["framework"] + [str(size) for size in BATCH_SIZES], rows
        ))
        overheads = [
            table[("freewayml", phase, size)]
            / table[("streaming-cnn", phase, size)] - 1.0
            for size in BATCH_SIZES
        ]
        print("overhead: " + "  ".join(f"{o * 100:+.0f}%" for o in overheads))
        benchmark.extra_info[f"max_overhead_{phase}"] = round(
            max(overheads) * 100
        )

    # Shape checks: scaling is ~linear in batch size, and inference
    # overhead stays bounded.
    plain_ratio = (table[("streaming-cnn", "update", 4096)]
                   / table[("streaming-cnn", "update", 512)])
    assert 3.0 < plain_ratio < 24.0
    infer_overhead = (table[("freewayml", "infer", 2048)]
                      / table[("streaming-cnn", "infer", 2048)])
    assert infer_overhead < 3.0
