"""Ablation — shift metric: Eq. 6-7 mean distance vs MMD (future work).

The paper measures shifts as the Euclidean distance between projected batch
means and plans richer statistics as future work.  This ablation compares
three metrics on two detection tasks:

1. a **mean shift** (the case Eqs. 6–7 were designed for) — all metrics
   should fire;
2. a **variance-only regime change** (same mean, 3x the spread) — only a
   distribution-aware metric can fire.

Each metric produces a shift-distance series fed to the same
SeverityTracker z-test (Eqs. 8–10); "fires" means ``M > 1.96`` at the true
change point.
"""

import numpy as np

from conftest import print_banner
from repro.eval import format_table
from repro.shift import MMDShiftScorer, SeverityTracker, WarmupPCA

STABLE_BATCHES = 20
BATCH = 256
FEATURES = 6


def _stream(rng, variance_only: bool):
    for _ in range(STABLE_BATCHES):
        yield rng.normal(scale=1.0, size=(BATCH, FEATURES)), False
    if variance_only:
        yield rng.normal(scale=3.0, size=(BATCH, FEATURES)), True
    else:
        yield rng.normal(scale=1.0, size=(BATCH, FEATURES)) + 2.0, True


def _euclidean_scorer(representation):
    pca = WarmupPCA(num_components=2, warmup_points=2,
                    representation=representation)
    previous = {"embedding": None}

    def score(x):
        pca.observe(x)
        embedding = pca.batch_embedding(x)
        last, previous["embedding"] = previous["embedding"], embedding
        if last is None:
            return None
        return float(np.linalg.norm(embedding - last))

    return score


def _severity_at_change(score_fn, rng, variance_only):
    tracker = SeverityTracker(window=20, decay=1.0)
    for x, is_change in _stream(rng, variance_only):
        distance = score_fn(x)
        if distance is None:
            continue
        if is_change:
            return tracker.score(distance)
        tracker.observe(distance)
    raise AssertionError("stream had no change point")


def test_ablation_shift_metric(benchmark):
    def run():
        metrics = {
            "mean distance (Eq. 6-7)": lambda: _euclidean_scorer("mean"),
            "mean+std distance": lambda: _euclidean_scorer("mean-std"),
            "MMD (RBF)": lambda: MMDShiftScorer(seed=0).score,
        }
        table = {}
        for name, make in metrics.items():
            for variance_only in (False, True):
                rng = np.random.default_rng(7)
                table[(name, variance_only)] = _severity_at_change(
                    make(), rng, variance_only
                )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Ablation: shift metric vs detection task (severity M)")
    rows = []
    for name in ("mean distance (Eq. 6-7)", "mean+std distance",
                 "MMD (RBF)"):
        rows.append([
            name,
            f"{table[(name, False)]:.1f}",
            f"{table[(name, True)]:.1f}",
        ])
    print(format_table(["metric", "mean shift M", "variance shift M"], rows))
    print("\n(M > 1.96 = detected; Eqs. 8-10 z-test)")

    # Every metric catches the mean shift...
    for name in ("mean distance (Eq. 6-7)", "mean+std distance",
                 "MMD (RBF)"):
        assert table[(name, False)] > 1.96, name
    # ...but the richer metrics catch the variance regime far more
    # decisively than the plain mean distance.
    assert (table[("mean+std distance", True)]
            > 2 * table[("mean distance (Eq. 6-7)", True)])
    assert table[("MMD (RBF)", True)] > 1.96