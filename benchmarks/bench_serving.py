"""Serving bench — multi-tenant front end under Zipf load (extension).

The serving front end (``repro.serving``, docs/SERVING.md) multiplexes
thousands of per-tenant streams onto one process with an LRU session
registry far smaller than the tenant population, so hot tenants stay
resident while the tail churns through checkpoint/rehydrate.  This bench
drives it with heavy-tailed Zipf arrivals and reports throughput, p50/p99
request latency, activation/rehydration/eviction counts, and the shed
rate — then asserts the serving-equivalence contract: a sample of
tenants' served predictions must be byte-identical to a serial replay of
their accepted requests through a fresh estimator with the same
micro-batch groupings.

As a pytest benchmark (``pytest benchmarks/bench_serving.py``) it runs
the 1k-tenant tier once.  As a script it scales further::

    PYTHONPATH=src python benchmarks/bench_serving.py                # 1k
    PYTHONPATH=src python benchmarks/bench_serving.py --tenants 5000
    PYTHONPATH=src python benchmarks/bench_serving.py --tenants 10000
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke        # CI

``--smoke`` is the CI tier: 64 tenants over a 16-session registry, small
enough for single-CPU runners (the service is one event loop, so extra
cores only help the host, not the bench).
"""

import argparse
import os
import time

import numpy as np

from conftest import SEED, print_banner
from repro.core.learner import Learner
from repro.eval import model_factory_for
from repro.models import StreamingLR
from repro.serving import (
    ModelEstimator,
    ServeConfig,
    SessionRegistry,
    make_requests,
    predict_and_update,
    serve_requests,
    zipf_tenants,
)

NUM_FEATURES = 8
NUM_CLASSES = 2
ROWS_PER_REQUEST = 4

#: Per-tenant estimator shape: one granularity level keeps a 10k-tenant
#: population affordable while exercising the full FreewayML step.
LEARNER_KWARGS = {"num_models": 1, "window_batches": 4, "seed": SEED}


def _model_factory():
    return model_factory_for("lr", NUM_FEATURES, NUM_CLASSES, lr=0.3,
                             seed=SEED)


def _estimator_factory(stacked):
    """Per-tenant estimator builder for the chosen execution mode.

    ``--stacked`` serves bare :class:`ModelEstimator` tenants (the
    stackable shape); the default tier serves full FreewayML ``Learner``
    sessions, which always take the serial path.
    """
    if stacked:
        return lambda: ModelEstimator(StreamingLR(
            num_features=NUM_FEATURES, num_classes=NUM_CLASSES, lr=0.3,
            seed=SEED))
    model_factory = _model_factory()
    return lambda: Learner(model_factory, **LEARNER_KWARGS)


def _make_registry(capacity, stacked=False):
    factory = _estimator_factory(stacked)
    return SessionRegistry(lambda tenant: factory(), capacity=capacity)


def assert_serving_equivalence(requests, results, service, sample,
                               stacked=False):
    """Served labels for sampled tenants == serial replay, byte for byte."""
    by_tenant = {}
    for (tenant, x, y), result in zip(requests, results):
        if result.accepted:
            by_tenant.setdefault(tenant, []).append((x, y, result))
    replica_factory = _estimator_factory(stacked)
    checked = 0
    for tenant in sample:
        entries = by_tenant.get(tenant)
        if not entries:
            continue
        grouping = service.grouping(tenant)
        assert sum(grouping) == len(entries), (
            f"{tenant}: grouping covers {sum(grouping)} requests, "
            f"{len(entries)} were served")
        replica = replica_factory()
        served = np.concatenate([result.labels for _x, _y, result in entries])
        replayed = []
        cursor = 0
        for group in grouping:
            chunk = entries[cursor:cursor + group]
            cursor += group
            x = np.vstack([entry[0] for entry in chunk])
            y = np.concatenate([entry[1] for entry in chunk])
            replayed.append(predict_and_update(replica, x, y))
        np.testing.assert_array_equal(
            served, np.concatenate(replayed),
            err_msg=f"{tenant}: served != serial replay")
        checked += 1
    assert checked > 0, "equivalence sample matched no served tenant"
    return checked


def run_serving(num_tenants, num_requests, capacity, *,
                shed_policy="reject", window=256, sample_size=8,
                stacked=False):
    """One serving tier; returns the reported metrics as a dict."""
    config = ServeConfig(
        max_active_tenants=capacity, microbatch_size=16,
        microbatch_timeout_s=0.005, shed_policy=shed_policy,
        max_pending_per_tenant=64,
        max_pending_total=max(4096, 2 * window),
        learner_kwargs=dict(LEARNER_KWARGS),
        stacked_execution=stacked)
    registry = _make_registry(capacity, stacked=stacked)
    arrivals = zipf_tenants(num_requests, num_tenants, exponent=1.05,
                            seed=SEED)
    requests = make_requests(arrivals, rows_per_request=ROWS_PER_REQUEST,
                             num_features=NUM_FEATURES,
                             num_classes=NUM_CLASSES, seed=SEED)
    started = time.perf_counter()
    results, service = serve_requests(config, registry, requests,
                                      window=window)
    elapsed = time.perf_counter() - started

    summary = service.summary()
    stats = summary["registry"]
    served_rows = sum(len(result.labels) for result in results
                      if result.accepted)
    latencies = sorted(result.latency_s for result in results
                       if result.accepted)
    distinct = sorted({tenant for tenant, _x, _y in requests})
    # Hot head and cold tail both verified: the head stays resident, the
    # tail is the one that round-trips through checkpoints.
    stride = max(1, len(distinct) // sample_size)
    sample = distinct[::stride][:sample_size]
    checked = assert_serving_equivalence(requests, results, service, sample,
                                         stacked=stacked)
    return {
        "tenants": num_tenants,
        "stacked": stacked,
        "batches_stacked": summary.get("batches_stacked", 0),
        "stacked_groups": summary.get("stacked_groups", 0),
        "tenants_seen": len(distinct),
        "capacity": capacity,
        "requests": len(results),
        "ok": summary["requests_ok"],
        "shed": summary["requests_shed"],
        "failed": summary["requests_failed"],
        "shed_rate": summary["requests_shed"] / max(1, len(results)),
        "elapsed_s": elapsed,
        "throughput_rows_s": served_rows / max(elapsed, 1e-9),
        "latency_p50_ms": (latencies[len(latencies) // 2] * 1e3
                           if latencies else 0.0),
        "latency_p99_ms": (latencies[int(len(latencies) * 0.99)] * 1e3
                           if latencies else 0.0),
        "activations": stats["activations"],
        "rehydrations": stats["rehydrations"],
        "evictions": stats["evictions"],
        "equivalence_checked": checked,
    }


def _report(metrics) -> None:
    print(f"tenants    : {metrics['tenants']} "
          f"({metrics['tenants_seen']} seen, "
          f"capacity {metrics['capacity']})")
    print(f"requests   : {metrics['requests']} (ok {metrics['ok']}, "
          f"shed {metrics['shed']}, failed {metrics['failed']})")
    print(f"throughput : {metrics['throughput_rows_s'] / 1e3:.1f} K rows/s "
          f"over {metrics['elapsed_s']:.2f}s")
    print(f"latency    : p50 {metrics['latency_p50_ms']:.2f} ms, "
          f"p99 {metrics['latency_p99_ms']:.2f} ms")
    print(f"shed rate  : {metrics['shed_rate'] * 100:.2f}%")
    print(f"registry   : {metrics['activations']} activations "
          f"({metrics['rehydrations']} rehydrated), "
          f"{metrics['evictions']} evictions")
    if metrics["stacked"]:
        print(f"stacked    : {metrics['batches_stacked']} micro-batches "
              f"co-scheduled in {metrics['stacked_groups']} groups")
    print(f"equivalence: {metrics['equivalence_checked']} tenants "
          f"replayed serially — identical")


def test_serving_scalability(benchmark):
    """1k tenants over a 64-session registry: the bench's pytest tier."""
    metrics = benchmark.pedantic(
        lambda: run_serving(1000, 8000, 64), rounds=1, iterations=1)
    print_banner("Multi-tenant serving — 1k tenants, capacity 64")
    _report(metrics)
    assert metrics["failed"] == 0
    assert metrics["ok"] > 0
    # Capacity well below the tenant population must force real churn.
    assert metrics["evictions"] > metrics["capacity"]
    assert metrics["rehydrations"] > 0
    benchmark.extra_info["throughput_rows_s"] = round(
        metrics["throughput_rows_s"])
    benchmark.extra_info["latency_p99_ms"] = round(
        metrics["latency_p99_ms"], 2)
    benchmark.extra_info["shed_rate"] = round(metrics["shed_rate"], 4)
    benchmark.extra_info["evictions"] = metrics["evictions"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, default=1000,
                        help="tenant population (try 5000 / 10000)")
    parser.add_argument("--requests", type=int, default=None,
                        help="total requests (default: 8 per tenant)")
    parser.add_argument("--capacity", type=int, default=None,
                        help="resident sessions (default: tenants // 16)")
    parser.add_argument("--shed-policy", default="reject",
                        choices=["reject", "oldest", "block"],
                        dest="shed_policy")
    parser.add_argument("--window", type=int, default=256,
                        help="concurrent in-flight submissions")
    parser.add_argument("--smoke", action="store_true",
                        help="CI tier: 64 tenants, capacity 16")
    parser.add_argument("--stacked", action="store_true",
                        help="serve stackable ModelEstimator tenants with "
                             "stacked co-scheduling on")
    args = parser.parse_args(argv)

    if args.smoke:
        tenants, requests, capacity = 64, 1200, 16
        tier = "smoke (CI)"
    else:
        tenants = args.tenants
        requests = (args.requests if args.requests is not None
                    else 8 * tenants)
        capacity = (args.capacity if args.capacity is not None
                    else max(16, tenants // 16))
        tier = f"{tenants} tenants"
        if (os.cpu_count() or 1) < 2:
            print("NOTE: single-CPU host — serving shares its core with "
                  "the harness; latency numbers will be pessimistic")
    print_banner(f"Multi-tenant serving — {tier}, capacity {capacity}")
    metrics = run_serving(tenants, requests, capacity,
                          shed_policy=args.shed_policy, window=args.window,
                          stacked=args.stacked)
    _report(metrics)
    assert metrics["failed"] == 0
    assert metrics["evictions"] > 0, "no churn: capacity too generous"
    if args.stacked:
        assert metrics["batches_stacked"] > 0, "stacked tier never stacked"
    print("\nOK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
