"""Ablation — the pre-computing window (paper Section V-B).

The mechanism banks each arriving batch's gradient so the long-granularity
update at window completion only aggregates — moving compute from the
latency-critical completion step to the waiting time between batches.
This bench measures (a) the window-*completion* latency with and without
pre-computation, and (b) the accuracy cost of trading the multi-epoch
decayed-window training for the single aggregated step.
"""

import time

import numpy as np

from conftest import SEED, print_banner
from repro.core import Learner
from repro.data import ElectricitySimulator, HyperplaneGenerator
from repro.eval import format_table, model_factory_for

BATCH_SIZE = 1024
WINDOW = 4


def _completion_latency(use_precompute: bool) -> float:
    """Mean wall time of the batch that completes the long window."""
    generator = HyperplaneGenerator(seed=0)
    batches = generator.stream(4 * WINDOW + 1, BATCH_SIZE).materialize()
    factory = model_factory_for("mlp", generator.num_features, 2, lr=0.3)
    learner = Learner(factory, window_batches=WINDOW,
                      use_precompute=use_precompute, seed=0)
    completion_times = []
    window = learner.ensemble.long_levels[0].window
    for batch in batches:
        completing = window.num_batches == WINDOW - 1
        start = time.perf_counter()
        learner.update(batch.x, batch.y)
        elapsed = time.perf_counter() - start
        if completing:
            completion_times.append(elapsed)
    return float(np.mean(completion_times)) * 1e6


def _accuracy(use_precompute: bool) -> float:
    generator = ElectricitySimulator(seed=SEED)
    factory = model_factory_for("mlp", generator.num_features,
                                generator.num_classes, lr=0.3)
    learner = Learner(factory, window_batches=8,
                      use_precompute=use_precompute, seed=SEED)
    accuracies = [learner.process(batch).accuracy
                  for batch in generator.stream(60, 256)]
    return float(np.mean(accuracies))


def test_ablation_precompute(benchmark):
    def run():
        return {
            "latency_plain": _completion_latency(False),
            "latency_precompute": _completion_latency(True),
            "accuracy_plain": _accuracy(False),
            "accuracy_precompute": _accuracy(True),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Ablation: pre-computing window (Section V-B)")
    print(format_table(
        ["variant", "window-completion latency (µs)", "G_acc"],
        [["multi-epoch window training",
          f"{results['latency_plain']:.0f}",
          f"{results['accuracy_plain'] * 100:.2f}%"],
         ["pre-computed gradients",
          f"{results['latency_precompute']:.0f}",
          f"{results['accuracy_precompute'] * 100:.2f}%"]],
    ))
    speedup = results["latency_plain"] / results["latency_precompute"]
    print(f"\ncompletion-latency speedup: {speedup:.1f}x; accuracy delta "
          f"{(results['accuracy_precompute'] - results['accuracy_plain']) * 100:+.2f} points")
    benchmark.extra_info["speedup"] = round(speedup, 1)
    # The whole point of the mechanism: completing the window is much
    # cheaper, while accuracy stays in the same band.
    assert speedup > 1.5
    assert results["accuracy_precompute"] > results["accuracy_plain"] - 0.05