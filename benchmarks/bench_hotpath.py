"""Hot-path benchmark: end-to-end ``Learner.process`` latency/throughput.

Measures LR / MLP / CNN learners over the three canonical stream shapes
(A: slight directional drift, B: sudden concept switches, C: the mixed
schedule with reoccurrences), in two modes:

- ``optimized`` — the default flag state of :mod:`repro.perf`;
- ``reference`` — everything under ``optimizations_disabled()``.

On a checkout that predates ``repro.perf`` (the "before" tree of the
perf pass) the script still runs — both modes then measure the legacy
implementation — so the same file produces the before/after numbers in
``BENCH_hotpath.json``.

Every invocation first asserts the equivalence gate: the optimized and
reference modes must produce *identical* accuracy sequences on the MLP
slight-shift stream.  A benchmark that got faster by changing results is
reported as a failure, not a speedup.

``--stacked`` measures a different axis: N small same-architecture
models served by the stacked multi-model engine (:mod:`repro.nn.stacked`)
versus the per-model serial loop, with its own equivalence gate — every
per-model prediction and every updated parameter must be bitwise
identical between the two paths — plus a throughput floor (the stacked
engine must be at least 2x the serial loop at N >= 32).

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py            # full grid
    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_hotpath.py --stacked  # model axis
    PYTHONPATH=src python benchmarks/bench_hotpath.py --json out.json
"""

from __future__ import annotations

import argparse
import contextlib
import json
import statistics
import sys
import time

import numpy as np

from repro.core import Learner
from repro.data.drift import (GaussianMixtureConcept, Segment,
                              pattern_mix_schedule, stream_from_schedule)
from repro.eval import model_factory_for

try:
    from repro.perf import optimizations_disabled
    HAVE_PERF = True
except ImportError:  # pre-perf-pass checkout: reference mode == optimized
    optimizations_disabled = contextlib.nullcontext
    HAVE_PERF = False

BATCH_SIZE = 128
NUM_FEATURES = 16
NUM_CLASSES = 4
MODELS = ("lr", "mlp", "cnn")
STREAMS = ("slight", "sudden", "reoccurring")


def make_stream(kind: str, num_batches: int, batch_size: int = BATCH_SIZE):
    """Deterministic stream of one pattern family (same seed every call)."""
    rng = np.random.default_rng(7)
    if kind == "slight":
        concepts = {"c0": GaussianMixtureConcept(NUM_CLASSES, NUM_FEATURES,
                                                 rng, spread=3.0)}
        segments = [Segment("c0", num_batches, kind="directional",
                            magnitude=0.05)]
    elif kind == "sudden":
        base = GaussianMixtureConcept(NUM_CLASSES, NUM_FEATURES, rng,
                                      spread=3.0)
        concepts = {"c0": base, "c1": base.remix(rng, offset=4.0)}
        half = max(num_batches // 2, 1)
        segments = [
            Segment("c0", half, kind="stationary"),
            Segment("c1", num_batches - half, kind="stationary",
                    entry="sudden"),
        ]
    elif kind == "reoccurring":
        concepts, segments = pattern_mix_schedule(
            rng, num_classes=NUM_CLASSES, num_features=NUM_FEATURES,
            segment_length=max(num_batches // 7, 4),
        )
    else:
        raise ValueError(f"unknown stream kind {kind!r}")
    return list(stream_from_schedule(concepts, segments, batch_size, rng,
                                     num_classes=NUM_CLASSES))


def run_stream(model: str, batches, collect_accuracy: bool = False):
    """One prequential pass; returns (per-batch seconds, accuracies)."""
    factory = model_factory_for(model, NUM_FEATURES, NUM_CLASSES,
                                lr=0.3, seed=0)
    learner = Learner(factory, seed=0)
    latencies, accuracies = [], []
    for batch in batches:
        start = time.perf_counter()
        report = learner.process(batch)
        latencies.append(time.perf_counter() - start)
        if collect_accuracy:
            accuracies.append(report.accuracy)
    return latencies, accuracies


def measure(model: str, stream_kind: str, num_batches: int, repeats: int,
            optimized: bool, batch_size: int = BATCH_SIZE) -> dict:
    """Median per-batch latency and throughput over ``repeats`` passes."""
    batches = make_stream(stream_kind, num_batches, batch_size)
    context = (contextlib.nullcontext() if optimized
               else optimizations_disabled())
    with context:
        run_stream(model, batches[:max(num_batches // 4, 2)])  # warm-up
        per_pass = []
        all_latencies = []
        for _ in range(repeats):
            latencies, _ = run_stream(model, batches)
            all_latencies.extend(latencies)
            per_pass.append(num_batches / sum(latencies))
    # Latency is the median over every timed batch; throughput is the
    # *best* pass (the timeit estimator: other processes can only slow a
    # pass down, so the fastest pass is the least-contaminated sample).
    return {
        "model": model,
        "stream": stream_kind,
        "batch_size": batch_size,
        "num_batches": num_batches,
        "repeats": repeats,
        "median_batch_latency_ms": statistics.median(all_latencies) * 1e3,
        "batches_per_s": max(per_pass),
        "items_per_s": max(per_pass) * batch_size,
    }


def equivalence_gate(num_batches: int = 16) -> bool:
    """Optimized and reference must answer the stream identically."""
    batches = make_stream("slight", num_batches)
    _, optimized = run_stream("mlp", batches, collect_accuracy=True)
    with optimizations_disabled():
        _, reference = run_stream("mlp", batches, collect_accuracy=True)
    return optimized == reference


STACKED_MODELS = ("lr", "mlp")
STACKED_SIZES = (8, 32)
STACKED_SPEEDUP_FLOOR = 2.0  # required at N >= 32


def _small_module(kind: str, seed: int):
    """A tenant-sized model for the stacked axis (LR or one-hidden MLP)."""
    from repro import nn

    rng = np.random.default_rng(seed)
    if kind == "lr":
        return nn.Sequential(nn.Linear(NUM_FEATURES, NUM_CLASSES, rng=rng))
    return nn.Sequential(nn.Linear(NUM_FEATURES, 16, rng=rng), nn.ReLU(),
                         nn.Linear(16, NUM_CLASSES, rng=rng))


def _softmax(data: np.ndarray) -> np.ndarray:
    shifted = data - data.max(axis=-1, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    return np.exp(shifted - log_norm)


def measure_stacked(kind: str, num_models: int, steps: int, repeats: int,
                    batch_size: int = 32) -> dict:
    """Stacked engine vs. per-model serial loop over one model fleet.

    Both paths run predict-then-train each step (the serving pattern).
    The equivalence gate compares *every* step's per-model predictions
    and the final parameters bitwise; the timing takes the best of
    ``repeats`` passes per path, each from a freshly built fleet.
    """
    from repro import nn
    from repro.nn import functional as F

    rng = np.random.default_rng(11)
    xs = rng.normal(size=(steps, num_models, batch_size, NUM_FEATURES))
    ys = rng.integers(0, NUM_CLASSES, size=(steps, num_models, batch_size))

    def build():
        modules = [_small_module(kind, seed) for seed in range(num_models)]
        optimizers = [nn.SGD(module.parameters(), lr=0.1, momentum=0.9)
                      for module in modules]
        return modules, optimizers

    def serial_run(modules, optimizers):
        predictions = np.empty((steps, num_models, batch_size), dtype=int)
        start = time.perf_counter()
        for step in range(steps):
            for index, (module, optimizer) in enumerate(
                    zip(modules, optimizers)):
                x, y = xs[step, index], ys[step, index]
                module.eval()
                with nn.no_grad():
                    logits = module(nn.Tensor(x))
                module.train()
                predictions[step, index] = _softmax(
                    logits.data).argmax(axis=-1)
                optimizer.zero_grad()
                loss = F.cross_entropy(module(nn.Tensor(x)), y)
                loss.backward()
                optimizer.step()
        return time.perf_counter() - start, predictions

    def stacked_run(modules, optimizers):
        predictions = np.empty((steps, num_models, batch_size), dtype=int)
        start = time.perf_counter()
        stack = nn.stack_models(modules)
        optimizer = nn.make_stacked_optimizer(stack, optimizers)
        for step in range(steps):
            predictions[step] = stack.predict_proba(
                xs[step]).argmax(axis=-1)
            nn.stacked_fit(stack, optimizer, xs[step], ys[step])
        nn.unstack_models(stack)
        optimizer.export_to(optimizers)
        return time.perf_counter() - start, predictions

    serial_models, serial_opts = build()
    stacked_models, stacked_opts = build()
    serial_times, stacked_times = [], []
    elapsed, serial_preds = serial_run(serial_models, serial_opts)
    serial_times.append(elapsed)
    elapsed, stacked_preds = stacked_run(stacked_models, stacked_opts)
    stacked_times.append(elapsed)
    equivalent = bool(np.array_equal(serial_preds, stacked_preds)) and all(
        np.array_equal(mine.data, theirs.data)
        for serial_module, stacked_module in zip(serial_models,
                                                 stacked_models)
        for mine, theirs in zip(serial_module.parameters(),
                                stacked_module.parameters()))
    for _ in range(repeats - 1):
        serial_times.append(serial_run(*build())[0])
        stacked_times.append(stacked_run(*build())[0])
    rows = steps * num_models * batch_size
    speedup = min(serial_times) / min(stacked_times)
    return {
        "axis": "stacked",
        "model": kind,
        "num_models": num_models,
        "steps": steps,
        "batch_size": batch_size,
        "repeats": repeats,
        "serial_items_per_s": rows / min(serial_times),
        "stacked_items_per_s": rows / min(stacked_times),
        "speedup": speedup,
        "equivalent": equivalent,
        "meets_floor": (speedup >= STACKED_SPEEDUP_FLOOR
                        if num_models >= 32 else True),
    }


def run_stacked_axis(num_models_list=STACKED_SIZES, steps: int = 30,
                     repeats: int = 3,
                     models=STACKED_MODELS) -> list[dict]:
    results = []
    for kind in models:
        for num_models in num_models_list:
            entry = measure_stacked(kind, num_models, steps, repeats)
            results.append(entry)
            gate = "ok" if entry["equivalent"] else "NOT EQUIVALENT"
            print(f"{kind:>4} x{num_models:<3} stacked: "
                  f"{entry['speedup']:5.2f}x serial "
                  f"({entry['stacked_items_per_s']:9.0f} items/s)  "
                  f"[bitwise {gate}]", file=sys.stderr)
    return results


PLAN_MODELS = ("lr", "mlp")
PLAN_SPEEDUP_FLOOR = 1.3  # required for MLP (fit axis) in full runs


def measure_plans(kind: str, num_batches: int, repeats: int,
                  batch_size: int = BATCH_SIZE) -> dict:
    """Captured-plan replay vs. the optimized define-by-run path.

    Runs the serving pattern (predict, then train) directly on one
    streaming model over the slight-shift stream, with ``plan_capture``
    on versus off — every other perf flag stays at its default, so the
    speedup is plans-only.  The equivalence gate compares every loss,
    every prediction, and the final parameters bitwise.
    """
    from repro.perf import configure

    batches = make_stream("slight", num_batches, batch_size)

    def one_pass(plans_on: bool):
        factory = model_factory_for(kind, NUM_FEATURES, NUM_CLASSES,
                                    lr=0.3, seed=0)
        model = factory()
        losses = []
        predictions = np.empty((len(batches), batch_size), dtype=int)
        with configure(plan_capture=plans_on):
            # Warm-up (untimed): triggers the one-time capture, so the
            # timed loop measures steady-state replay — the regime the
            # trace-once/replay-many engine exists for.  Both modes warm
            # up identically, so the bitwise comparison still holds.
            for batch in batches[:2]:
                model.predict_proba(batch.x)
                model.partial_fit(batch.x, batch.y)
            start = time.perf_counter()
            for index, batch in enumerate(batches):
                predictions[index] = model.predict_proba(
                    batch.x).argmax(axis=1)
                losses.append(model.partial_fit(batch.x, batch.y))
            elapsed = time.perf_counter() - start
        return elapsed, losses, predictions, model.state_dict()

    on_times, off_times = [], []
    elapsed, losses_on, preds_on, state_on = one_pass(True)
    on_times.append(elapsed)
    elapsed, losses_off, preds_off, state_off = one_pass(False)
    off_times.append(elapsed)
    equivalent = (losses_on == losses_off
                  and bool(np.array_equal(preds_on, preds_off))
                  and all(state_on[key].tobytes() == state_off[key].tobytes()
                          for key in state_on))
    for _ in range(repeats - 1):
        on_times.append(one_pass(True)[0])
        off_times.append(one_pass(False)[0])
    rows = len(batches) * batch_size
    return {
        "axis": "plans",
        "model": kind,
        "stream": "slight",
        "batch_size": batch_size,
        "num_batches": num_batches,
        "repeats": repeats,
        "baseline_items_per_s": rows / min(off_times),
        "plans_items_per_s": rows / min(on_times),
        "speedup": min(off_times) / min(on_times),
        "equivalent": equivalent,
    }


def measure_plans_stacked(num_models: int = 8, steps: int = 30,
                          repeats: int = 3, batch_size: int = 32) -> dict:
    """Plan replay stacked compound cell: plans on vs off, both stacked.

    Shows the two engines multiply — the stacked batched step gets rid of
    the per-model Python loop, and the captured plan then removes the
    remaining per-step graph construction on top of it.
    """
    from repro import nn
    from repro.nn import plan as nn_plan
    from repro.perf import configure

    rng = np.random.default_rng(5)
    xs = rng.normal(size=(steps, num_models, batch_size, NUM_FEATURES))
    ys = rng.integers(0, NUM_CLASSES, size=(steps, num_models, batch_size))

    def one_pass(plans_on: bool):
        nn_plan.clear_stacked_plans()
        modules = [_small_module("mlp", seed) for seed in range(num_models)]
        optimizers = [nn.SGD(module.parameters(), lr=0.1, momentum=0.9)
                      for module in modules]
        stack = nn.stack_models(modules)
        optimizer = nn.make_stacked_optimizer(stack, optimizers)
        losses = np.empty((steps, num_models))
        with configure(plan_capture=plans_on):
            # Untimed warm-up: first call captures, later calls replay.
            for step in range(2):
                nn.stacked_fit(stack, optimizer, xs[step], ys[step])
            start = time.perf_counter()
            for step in range(steps):
                losses[step] = nn.stacked_fit(stack, optimizer,
                                              xs[step], ys[step])
            elapsed = time.perf_counter() - start
        nn.unstack_models(stack)
        optimizer.export_to(optimizers)
        params = np.concatenate([parameter.data.ravel()
                                 for module in modules
                                 for parameter in module.parameters()])
        return elapsed, losses, params

    on_times, off_times = [], []
    elapsed, losses_on, params_on = one_pass(True)
    on_times.append(elapsed)
    elapsed, losses_off, params_off = one_pass(False)
    off_times.append(elapsed)
    equivalent = (losses_on.tobytes() == losses_off.tobytes()
                  and params_on.tobytes() == params_off.tobytes())
    for _ in range(repeats - 1):
        on_times.append(one_pass(True)[0])
        off_times.append(one_pass(False)[0])
    rows = steps * num_models * batch_size
    return {
        "axis": "plans-stacked",
        "model": "mlp",
        "num_models": num_models,
        "steps": steps,
        "batch_size": batch_size,
        "repeats": repeats,
        "baseline_items_per_s": rows / min(off_times),
        "plans_items_per_s": rows / min(on_times),
        "speedup": min(off_times) / min(on_times),
        "equivalent": equivalent,
    }


def run_plans_axis(num_batches: int, repeats: int, smoke: bool,
                   models=PLAN_MODELS) -> tuple[list[dict], int]:
    """All plan cells; returns (results, exit_code)."""
    results = []
    for kind in models:
        results.append(measure_plans(kind, num_batches, repeats))
    # The stacked cell is cheap per step, so it runs the full step count
    # (short passes are too jittery for the 25% regression threshold).
    results.append(measure_plans_stacked(
        steps=max(num_batches, 6), repeats=repeats))
    failures = []
    for entry in results:
        gate = "ok" if entry["equivalent"] else "NOT EQUIVALENT"
        label = (f"{entry['model']} x{entry['num_models']}"
                 if entry["axis"] == "plans-stacked" else entry["model"])
        print(f"{label:>8} {entry['axis']:>13}: {entry['speedup']:5.2f}x "
              f"baseline ({entry['plans_items_per_s']:9.0f} items/s)  "
              f"[bitwise {gate}]", file=sys.stderr)
        if not entry["equivalent"]:
            failures.append(f"{label} not bitwise-equivalent")
        if (entry["axis"] == "plans" and entry["model"] == "mlp"
                and not smoke and entry["speedup"] < PLAN_SPEEDUP_FLOOR):
            # Smoke runs are too short for a stable ratio; the full run
            # (and regress.py --check) enforce the floor.
            failures.append(f"mlp plan speedup {entry['speedup']:.2f}x "
                            f"below the {PLAN_SPEEDUP_FLOOR}x floor")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return results, 1 if failures else 0


def run_grid(models, streams, num_batches: int, repeats: int,
             modes=("optimized", "reference")) -> list[dict]:
    results = []
    for model in models:
        for stream_kind in streams:
            for mode in modes:
                entry = measure(model, stream_kind, num_batches, repeats,
                                optimized=(mode == "optimized"))
                entry["mode"] = mode
                results.append(entry)
                print(f"{model:>4} {stream_kind:>11} {mode:>9}: "
                      f"{entry['median_batch_latency_ms']:7.2f} ms/batch  "
                      f"{entry['items_per_s']:9.0f} items/s",
                      file=sys.stderr)
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: MLP x slight only, few batches")
    parser.add_argument("--stacked", action="store_true",
                        help="measure the stacked multi-model engine vs "
                             "the per-model serial loop instead")
    parser.add_argument("--plans", action="store_true",
                        help="measure captured-plan replay (plan_capture) "
                             "vs the optimized define-by-run path instead")
    parser.add_argument("--json", metavar="PATH",
                        help="write results as JSON to PATH ('-' = stdout)")
    parser.add_argument("--batches", type=int, default=None,
                        help="batches per pass (default 60, smoke 16)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="passes per cell (default 5, smoke 2)")
    args = parser.parse_args(argv)

    if args.plans:
        num_batches = args.batches or (16 if args.smoke else 60)
        repeats = args.repeats or (2 if args.smoke else 3)
        results, code = run_plans_axis(num_batches, repeats, args.smoke)
        payload = {"axis": "plans", "results": results}
        if args.json == "-":
            json.dump(payload, sys.stdout, indent=2)
            print()
        elif args.json:
            with open(args.json, "w") as handle:
                json.dump(payload, handle, indent=2)
        return code

    if args.stacked:
        steps = args.batches or (12 if args.smoke else 30)
        repeats = args.repeats or (2 if args.smoke else 3)
        results = run_stacked_axis(steps=steps, repeats=repeats)
        broken = [entry for entry in results if not entry["equivalent"]]
        slow = [entry for entry in results if not entry["meets_floor"]]
        if broken:
            print("FAIL: stacked and serial execution disagree bitwise for "
                  + ", ".join(f"{e['model']} x{e['num_models']}"
                              for e in broken), file=sys.stderr)
            return 1
        if slow:
            print(f"FAIL: stacked speedup below "
                  f"{STACKED_SPEEDUP_FLOOR:.0f}x at N >= 32 for "
                  + ", ".join(f"{e['model']} x{e['num_models']} "
                              f"({e['speedup']:.2f}x)" for e in slow),
                  file=sys.stderr)
            return 1
        payload = {"axis": "stacked", "results": results}
        if args.json == "-":
            json.dump(payload, sys.stdout, indent=2)
            print()
        elif args.json:
            with open(args.json, "w") as handle:
                json.dump(payload, handle, indent=2)
        return 0

    if args.smoke:
        models, streams = ("mlp",), ("slight",)
        num_batches = args.batches or 16
        repeats = args.repeats or 2
    else:
        models, streams = MODELS, STREAMS
        num_batches = args.batches or 60
        repeats = args.repeats or 5

    equivalent = equivalence_gate()
    if HAVE_PERF and not equivalent:
        print("FAIL: optimized and reference modes disagree on the MLP "
              "slight-shift accuracy sequence", file=sys.stderr)
        return 1
    print(f"equivalence gate: {'ok' if equivalent else 'n/a (no repro.perf)'}",
          file=sys.stderr)

    results = run_grid(models, streams, num_batches, repeats)
    payload = {
        "have_perf_package": HAVE_PERF,
        "equivalent": equivalent,
        "batch_size": BATCH_SIZE,
        "results": results,
    }
    if args.json == "-":
        json.dump(payload, sys.stdout, indent=2)
        print()
    elif args.json:
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
