"""Resilience bench — accuracy and latency under injected faults.

FreewayML targets "dynamic data streams", which in production means
streams that misbehave: dead workers, stalled batches, NaN bursts,
corrupted checkpoints.  This script measures what each canonical fault
costs the pipeline once the resilience layer absorbs it — the accuracy
delta versus a fault-free run and the wall-clock overhead of recovery::

    PYTHONPATH=src python benchmarks/bench_resilience.py
    PYTHONPATH=src python benchmarks/bench_resilience.py --smoke  # CI

Scenarios (each deterministic — explicit schedules or fixed seeds):

- ``baseline``       — fault-free run of the same workload;
- ``dirty-data``     — NaN/inf cells on a fraction of batches, absorbed
  by the learner's input sanitization (``degrade=True``);
- ``corrupt-ckpt``   — every preserved knowledge entry mangled; restores
  are rejected by the compat gate and the learner downgrades;
- ``worker-crash``   — a distributed worker killed mid-stream and
  recovered from the last sync checkpoint (needs the fork backend);
- ``slow-batch``     — a hung worker detected via ``hang_timeout`` and
  restarted (needs the fork backend).

The distributed scenarios additionally verify the recovered run's
accuracy sequence matches the serial reference exactly — the bench
doubles as an end-to-end recovery check.
"""

import argparse
import time

import numpy as np

from conftest import SEED, print_banner
from repro.core import Learner
from repro.data import ElectricitySimulator
from repro.distributed import DistributedLearner, ProcessBackend
from repro.eval import format_table, model_factory_for
from repro.resilience import (
    CorruptCheckpoint,
    DirtyData,
    SlowBatch,
    WorkerCrash,
)

NUM_BATCHES = 40
BATCH_SIZE = 256
NUM_WORKERS = 3

_GENERATOR = ElectricitySimulator(seed=SEED)


def _factory():
    return model_factory_for("lr", _GENERATOR.num_features,
                             _GENERATOR.num_classes, lr=0.3)


def _mlp_factory():
    return model_factory_for("mlp", _GENERATOR.num_features,
                             _GENERATOR.num_classes, lr=0.3)


def _batches(num_batches, batch_size):
    return (ElectricitySimulator(seed=SEED)
            .stream(num_batches, batch_size).materialize())


def _timed_serial(batches, *, transform=None, attach=None, degrade=True):
    """Run a single learner over ``batches``; returns (accuracies, wall)."""
    learner = Learner(_factory(), window_batches=8, seed=SEED,
                      degrade=degrade)
    if attach is not None:
        attach(learner)
    accuracies = []
    start = time.perf_counter()
    for batch in batches:
        if transform is not None:
            batch = transform(batch)
        accuracies.append(learner.process(batch).accuracy)
    return accuracies, time.perf_counter() - start


def _timed_distributed(batches, backend):
    learner = DistributedLearner(_mlp_factory(), num_workers=NUM_WORKERS,
                                 backend=backend, seed=SEED,
                                 window_batches=8)
    accuracies = []
    start = time.perf_counter()
    try:
        for batch in batches:
            accuracies.append(learner.process(batch).accuracy)
    finally:
        learner.close()
    return accuracies, time.perf_counter() - start


def _mean(accuracies):
    return float(np.mean([a for a in accuracies if a is not None]))


def run_serial_scenarios(num_batches, batch_size):
    """The single-learner scenarios; returns rows of
    (name, accuracies, wall, note)."""
    batches = _batches(num_batches, batch_size)
    rows = []

    accuracies, wall = _timed_serial(batches)
    rows.append(("baseline", accuracies, wall, ""))

    dirty = DirtyData(rate=0.25, cells=24, seed=SEED)
    accuracies, wall = _timed_serial(batches, transform=dirty)
    rows.append(("dirty-data", accuracies, wall,
                 f"{len(dirty.fired)} dirty batches sanitized"))

    corrupt = CorruptCheckpoint(rate=1.0, seed=SEED)
    accuracies, wall = _timed_serial(
        batches, attach=lambda learner: corrupt.attach(learner.knowledge)
    )
    rows.append(("corrupt-ckpt", accuracies, wall,
                 f"{len(corrupt.fired)} checkpoints mangled"))
    return rows


def run_distributed_scenarios(num_batches, batch_size):
    """The process-backend scenarios; returns (rows, all_matched)."""
    batches = _batches(num_batches, batch_size)
    serial, serial_wall = _timed_distributed(batches, "serial")
    rows = [("dist-baseline", serial, serial_wall, "serial reference")]
    matched = True

    crash_backend = ProcessBackend(max_restarts=3)
    WorkerCrash(at={num_batches // 2}, worker=1).attach(crash_backend)
    accuracies, wall = _timed_distributed(batches, crash_backend)
    crash_match = accuracies == serial
    matched &= crash_match
    rows.append(("worker-crash", accuracies, wall,
                 f"restarts={crash_backend.restarts}, "
                 f"serial-identical={crash_match}"))

    hang_backend = ProcessBackend(max_restarts=3, hang_timeout=1.0)
    SlowBatch(at={num_batches // 2}, worker=0, delay=30.0).attach(
        hang_backend)
    accuracies, wall = _timed_distributed(batches, hang_backend)
    hang_match = accuracies == serial
    matched &= hang_match
    rows.append(("slow-batch", accuracies, wall,
                 f"restarts={hang_backend.restarts}, "
                 f"serial-identical={hang_match}"))
    return rows, matched


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="accuracy/latency under injected faults"
    )
    parser.add_argument("--batches", type=int, default=NUM_BATCHES)
    parser.add_argument("--batch-size", type=int, default=BATCH_SIZE,
                        dest="batch_size")
    parser.add_argument("--smoke", action="store_true",
                        help="small CI workload, skip the hang scenario's "
                             "long timeout margin")
    parser.add_argument("--no-fork", action="store_true", dest="no_fork",
                        help="skip the process-backend scenarios")
    args = parser.parse_args(argv)
    if args.smoke:
        args.batches = min(args.batches, 10)
        args.batch_size = min(args.batch_size, 128)

    print_banner(
        f"Resilience under injected faults — {args.batches} batches "
        f"x {args.batch_size}"
    )
    rows = run_serial_scenarios(args.batches, args.batch_size)
    fork_ok = ProcessBackend.available() and not args.no_fork
    matched = True
    if fork_ok:
        dist_rows, matched = run_distributed_scenarios(
            args.batches, args.batch_size
        )
        rows.extend(dist_rows)
    else:
        print("(process backend unavailable — distributed scenarios "
              "skipped)\n")

    baseline = _mean(rows[0][1])
    table = [
        [name, f"{_mean(accuracies) * 100:.2f}%",
         f"{(_mean(accuracies) - baseline) * 100:+.2f}",
         f"{wall:.2f}s", note]
        for name, accuracies, wall, note in rows
    ]
    print(format_table(
        ["scenario", "G_acc", "delta pts", "wall", "notes"], table
    ))

    if fork_ok and not matched:
        print("\nERROR: a recovered distributed run diverged from the "
              "serial reference")
        return 1
    print("\nall injected faults absorbed; no uncaught exceptions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
