"""Ablation — CEC knobs: experience size m and data segmentation.

Two design choices behind coherent experience clustering:

1. ``cec_points`` (the paper's ``m``): too few labeled points give noisy
   cluster→label votes; too many reach past the continuity horizon and
   vote with pre-shift labels.  The sweep shows the sweet spot sits near
   the continuity leak size.
2. ``segments`` (the paper's Section VI-F future work): splitting a batch
   whose interior straddles a shift lets each side be mapped separately.

Measured directly on the CEC component with controlled regime changes, so
the effect is not diluted by the rest of the pipeline.
"""

import numpy as np

from conftest import print_banner
from repro.core import CoherentExperienceClustering, ExperienceBuffer
from repro.eval import format_table

BATCH = 240
FEATURES = 8
CLASSES = 3


def _concept(rng, offset, permutation):
    """Class centroids for one regime."""
    base = np.stack([
        np.full(FEATURES, -6.0), np.zeros(FEATURES), np.full(FEATURES, 6.0)
    ])
    return base[permutation] + offset


def _sample(rng, centroids, n):
    y = rng.integers(0, CLASSES, size=n)
    x = centroids[y] + rng.normal(scale=0.8, size=(n, FEATURES))
    return x, y


def _accuracy_at_shift(rng, cec_points, segments, mid_batch_shift):
    """CEC accuracy on the first post-shift batch.

    The experience buffer holds pre-shift batches whose tails leak the new
    regime (the continuity hypothesis), exactly as the stream generators
    produce.
    """
    old = _concept(rng, offset=0.0, permutation=[0, 1, 2])
    new = _concept(rng, offset=4.0, permutation=[2, 0, 1])
    buffer = ExperienceBuffer(capacity=2048, per_batch=128, expiration=10)
    for _ in range(4):
        x, y = _sample(rng, old, BATCH)
        buffer.add(x, y)
    # Final pre-shift batch: last 24 rows already follow the new regime.
    x, y = _sample(rng, old, BATCH)
    leak_x, leak_y = _sample(rng, new, 24)
    buffer.add(np.concatenate([x[:-24], leak_x]),
               np.concatenate([y[:-24], leak_y]))

    cec = CoherentExperienceClustering(CLASSES, experience_points=cec_points,
                                       segments=segments, seed=0)
    if mid_batch_shift:
        x_old, y_old = _sample(rng, old, BATCH // 2)
        x_new, y_new = _sample(rng, new, BATCH // 2)
        x_test = np.concatenate([x_old, x_new])
        y_test = np.concatenate([y_old, y_new])
    else:
        x_test, y_test = _sample(rng, new, BATCH)
    result = cec.predict(x_test, buffer)
    return float((result.labels == y_test).mean())


def test_ablation_cec_knobs(benchmark):
    def run():
        table = {}
        for cec_points in (16, 64, 256, 512):
            rng = np.random.default_rng(5)
            table[("m", cec_points)] = _accuracy_at_shift(
                rng, cec_points, segments=1, mid_batch_shift=False
            )
        for segments in (1, 2, 4):
            rng = np.random.default_rng(5)
            table[("segments", segments)] = _accuracy_at_shift(
                rng, 64, segments=segments, mid_batch_shift=True
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Ablation: CEC experience size m and segmentation")
    rows = [[f"m={m}", f"{table[('m', m)] * 100:.1f}%"]
            for m in (16, 64, 256, 512)]
    print(format_table(["experience points (post-shift batch)", "accuracy"],
                       rows))
    rows = [[f"segments={s}", f"{table[('segments', s)] * 100:.1f}%"]
            for s in (1, 2, 4)]
    print()
    print(format_table(["segmentation (mid-batch shift)", "accuracy"], rows))

    # Small m (within the continuity leak) beats huge m (votes polluted by
    # pre-shift labels)...
    assert table[("m", 64)] > table[("m", 512)]
    # ...and segmentation helps when the shift lands inside the batch.
    assert table[("segments", 2)] >= table[("segments", 1)]
    benchmark.extra_info["m64_minus_m512_points"] = round(
        (table[("m", 64)] - table[("m", 512)]) * 100, 1
    )