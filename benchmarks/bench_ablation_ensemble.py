"""Ablation — Gaussian-kernel distance ensemble vs uniform averaging.

The multi-granularity blend (Eq. 14) weights each model by how close its
training distribution is to the incoming batch.  This ablation replaces
the weighting with a plain average and compares G_acc on a stream with
regime changes, where the distance weighting is what suppresses a
mis-fit long model.
"""

import numpy as np

from conftest import SEED, print_banner
from repro.core import Learner
from repro.data import NSLKDDSimulator
from repro.eval import format_table, model_factory_for

NUM_BATCHES = 70
BATCH_SIZE = 256


class _UniformBlendLearner(Learner):
    """Learner whose ensemble averages trained levels uniformly."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        ensemble = self.ensemble

        def uniform_predict_proba(x, embedding):
            trained = [level for level in ensemble.levels if level.trained]
            if not trained:
                return np.full((len(x), ensemble.num_classes),
                               1.0 / ensemble.num_classes)
            blended = np.zeros((len(x), ensemble.num_classes))
            for level in trained:
                blended += level.model.predict_proba(x) / len(trained)
            return blended

        ensemble.predict_proba = uniform_predict_proba


def _run(learner_cls):
    generator = NSLKDDSimulator(seed=SEED)
    factory = model_factory_for("mlp", generator.num_features,
                                generator.num_classes, lr=0.3)
    learner = learner_cls(factory, window_batches=8, seed=SEED)
    accuracies = [
        learner.process(batch).accuracy
        for batch in generator.stream(NUM_BATCHES, BATCH_SIZE)
    ]
    return float(np.mean(accuracies))


def test_ablation_distance_ensemble(benchmark):
    def run():
        return _run(Learner), _run(_UniformBlendLearner)

    weighted, uniform = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Ablation: distance-weighted ensemble vs uniform average")
    print(format_table(
        ["variant", "G_acc"],
        [["Gaussian-kernel distance weights (Eq. 14)",
          f"{weighted * 100:.2f}%"],
         ["uniform average (ablated)", f"{uniform * 100:.2f}%"]],
    ))
    print(f"\ndelta: {(weighted - uniform) * 100:+.2f} points")
    benchmark.extra_info["delta_points"] = round(
        (weighted - uniform) * 100, 2
    )
    assert weighted > uniform
