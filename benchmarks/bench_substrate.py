"""Substrate microbenchmarks — the numpy NN engine's hot paths.

Not a paper experiment: these are performance-regression guards for the
PyTorch stand-in everything else rides on.  pytest-benchmark runs each op
repeatedly and reports the distribution, so substrate slowdowns show up
as outliers in the harness run rather than as mysterious accuracy-bench
slowness.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F

RNG = np.random.default_rng(0)


@pytest.fixture(scope="module")
def mlp():
    rng = np.random.default_rng(0)
    return nn.Sequential(
        nn.Linear(20, 64, rng=rng), nn.ReLU(), nn.Linear(64, 5, rng=rng)
    )


@pytest.fixture(scope="module")
def tabular_batch():
    return nn.Tensor(RNG.normal(size=(1024, 20))), RNG.integers(0, 5, 1024)


def test_mlp_forward(benchmark, mlp, tabular_batch):
    x, _ = tabular_batch

    def forward():
        with nn.no_grad():
            return mlp(x)

    benchmark(forward)


def test_mlp_forward_backward(benchmark, mlp, tabular_batch):
    x, y = tabular_batch

    def step():
        mlp.zero_grad()
        loss = F.cross_entropy(mlp(x), y)
        loss.backward()
        return loss

    benchmark(step)


def test_conv2d_forward(benchmark):
    rng = np.random.default_rng(0)
    conv = nn.Conv2d(1, 32, kernel_size=3, padding=1, rng=rng)
    x = nn.Tensor(rng.normal(size=(64, 1, 16, 16)))

    def forward():
        with nn.no_grad():
            return conv(x)

    benchmark(forward)


def test_conv2d_forward_backward(benchmark):
    rng = np.random.default_rng(0)
    conv = nn.Conv2d(1, 16, kernel_size=3, padding=1, rng=rng)
    x = nn.Tensor(rng.normal(size=(64, 1, 16, 16)))

    def step():
        conv.zero_grad()
        out = conv(x).sum()
        out.backward()
        return out

    benchmark(step)


def test_softmax_cross_entropy(benchmark):
    logits = nn.Tensor(RNG.normal(size=(1024, 5)), requires_grad=True)
    labels = RNG.integers(0, 5, 1024)

    def step():
        loss = F.cross_entropy(logits, labels)
        loss.backward()
        logits.zero_grad()
        return loss

    benchmark(step)


def test_pca_batch_embedding(benchmark):
    from repro.shift import WarmupPCA
    pca = WarmupPCA(num_components=2).fit(RNG.normal(size=(2048, 20)))
    batch = RNG.normal(size=(1024, 20))
    benchmark(pca.batch_embedding, batch)


def test_asw_add(benchmark):
    from repro.core import AdaptiveStreamingWindow
    window = AdaptiveStreamingWindow(max_batches=64)
    x = RNG.normal(size=(1024, 20))
    y = np.zeros(1024, dtype=np.int64)
    counter = {"n": 0}

    def add():
        counter["n"] += 1
        window.add(x, y, RNG.normal(size=2))
        if window.num_batches >= 32:
            window.reset()

    benchmark(add)


def test_kmeans_fit(benchmark):
    from repro.models import KMeans
    x = RNG.normal(size=(512, 20))

    def fit():
        return KMeans(5, seed=0).fit(x)

    benchmark(fit)