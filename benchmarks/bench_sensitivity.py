"""Sensitivity study — the paper's key hyperparameters.

The paper fixes ``alpha = 1.96`` "for the sake of classifying different
shift patterns" and leaves the ASW size implicit.  This bench sweeps both
on the NSL-KDD workload and checks the reproduction is not balanced on a
knife's edge: the default cell should be at or near the best, and the
whole grid should stay within a few points of it.
"""

import numpy as np

from conftest import BATCH_SIZE, SEED, print_banner
from repro.data import NSLKDDSimulator
from repro.eval import format_table, model_factory_for
from repro.eval.sweeps import sweep_learner

NUM_BATCHES = 60
ALPHAS = [1.0, 1.96, 3.0, 5.0]
WINDOWS = [4, 8, 16]


def test_sensitivity_alpha_window(benchmark):
    generator = NSLKDDSimulator(seed=SEED)
    factory = model_factory_for("mlp", generator.num_features,
                                generator.num_classes, lr=0.3)

    def run():
        return sweep_learner(
            factory, generator,
            grid={"alpha": ALPHAS, "window_batches": WINDOWS},
            num_batches=NUM_BATCHES, batch_size=BATCH_SIZE,
            base_kwargs={"seed": SEED},
        )

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Sensitivity: alpha x window_batches (G_acc, NSL-KDD)")
    table = {(cell.params["alpha"], cell.params["window_batches"]): cell
             for cell in cells}
    rows = []
    for alpha in ALPHAS:
        rows.append(
            [f"alpha={alpha}"]
            + [f"{table[(alpha, window)].g_acc * 100:.2f}%"
               for window in WINDOWS]
        )
    print(format_table(
        ["", *(f"window={window}" for window in WINDOWS)], rows
    ))

    accuracies = np.asarray([cell.g_acc for cell in cells])
    default = table[(1.96, 8)].g_acc
    best = accuracies.max()
    print(f"\ndefault (alpha=1.96, window=8): {default * 100:.2f}%  "
          f"best cell: {best * 100:.2f}%  spread: "
          f"{(best - accuracies.min()) * 100:.2f} points")
    benchmark.extra_info["default_gap_points"] = round(
        (best - default) * 100, 2
    )
    # The paper's default should be competitive (within 2 points of the
    # best cell) and the surface reasonably flat (spread < 10 points).
    assert default > best - 0.02
    assert best - accuracies.min() < 0.10