"""Section VI-C claim — minority-class performance on NSL-KDD.

Paper: "the data distribution shifts with the types of current network
attacks, often leading to significant class imbalances.  Our method
significantly enhances the classification performance of the minority
classes, which ... improves the overall accuracy."

This bench measures per-class recall and macro-F1 of FreewayML vs plain
StreamingMLP on the NSL-KDD simulator, whose rare classes (R2L ~4–7%,
U2R ~1–3%) surge only during specific attack regimes.
"""

import numpy as np

from conftest import SEED, print_banner
from repro.core import Learner
from repro.data import NSLKDDSimulator
from repro.eval import format_table, model_factory_for
from repro.metrics import class_recalls, macro_f1

NUM_BATCHES = 90
BATCH_SIZE = 256
CLASS_NAMES = ["normal", "dos", "probe", "r2l", "u2r"]


def _collect(run_prediction):
    generator = NSLKDDSimulator(seed=SEED)
    y_true, y_pred = [], []
    for batch in generator.stream(NUM_BATCHES, BATCH_SIZE):
        y_true.append(batch.y)
        y_pred.append(run_prediction(batch))
    return np.concatenate(y_true), np.concatenate(y_pred)


def test_minority_class_recall(benchmark):
    def run():
        factory = model_factory_for("mlp", 20, 5, lr=0.3)

        plain = factory()

        def plain_step(batch):
            predictions = plain.predict(batch.x)
            plain.partial_fit(batch.x, batch.y)
            return predictions

        learner = Learner(factory, window_batches=8, seed=SEED)

        def freeway_step(batch):
            prediction = learner.predict(batch.x)
            learner.update(batch.x, batch.y,
                           embedding=prediction.assessment.embedding)
            return prediction.labels

        plain_true, plain_pred = _collect(plain_step)
        freeway_true, freeway_pred = _collect(freeway_step)
        return {
            "plain": (class_recalls(plain_true, plain_pred, 5),
                      macro_f1(plain_true, plain_pred, 5)),
            "freewayml": (class_recalls(freeway_true, freeway_pred, 5),
                          macro_f1(freeway_true, freeway_pred, 5)),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Section VI-C: per-class recall on NSL-KDD")
    rows = []
    for name, (recalls, f1) in results.items():
        rows.append([name] + [f"{recall * 100:.1f}%" for recall in recalls]
                    + [f"{f1:.3f}"])
    print(format_table(["framework"] + CLASS_NAMES + ["macro-F1"], rows))

    plain_recalls, plain_f1 = results["plain"]
    freeway_recalls, freeway_f1 = results["freewayml"]
    minority_gain = np.nanmean(freeway_recalls[3:] - plain_recalls[3:])
    print(f"\nminority-class (r2l+u2r) recall gain: "
          f"{minority_gain * 100:+.1f} points; macro-F1 "
          f"{plain_f1:.3f} -> {freeway_f1:.3f}")
    benchmark.extra_info["minority_gain_points"] = round(
        float(minority_gain) * 100, 1
    )
    # The paper's claim: minority classes improve, lifting the aggregate.
    assert freeway_f1 > plain_f1
    assert minority_gain > 0.0
