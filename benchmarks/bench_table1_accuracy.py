"""Table I — accuracy and stability of SML frameworks on six datasets.

Paper claim (shape): FreewayML has the best G_acc and SI in both the
StreamingLR group (vs Flink ML / Spark MLlib / Alink) and the StreamingMLP
group (vs River / Camel / A-GEM) on all six datasets, improving accuracy
by ~3.8 points on average.
"""

import numpy as np

from conftest import BATCH_SIZE, NUM_BATCHES, SEED, print_banner
from repro.baselines import LR_GROUP, MLP_GROUP
from repro.eval import RunConfig, render_accuracy_table, run_matrix

FREEWAYML = "freewayml"


def _run_group(model, group, datasets):
    config = RunConfig(num_batches=NUM_BATCHES, batch_size=BATCH_SIZE,
                       model=model, seed=SEED)
    frameworks = list(group) + [FREEWAYML]
    return run_matrix(frameworks, datasets, config)


def _summarize(results):
    wins = 0
    deltas = []
    for per_dataset in results.values():
        best = max(per_dataset.values(), key=lambda r: r.g_acc)
        wins += best.name == FREEWAYML
        others = [r.g_acc for name, r in per_dataset.items()
                  if name != FREEWAYML]
        deltas.append(per_dataset[FREEWAYML].g_acc - float(np.mean(others)))
    return wins, float(np.mean(deltas))


def test_table1_streaming_lr(benchmark, datasets):
    def run():
        return _run_group("lr", LR_GROUP, datasets)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Table I (StreamingLR group): G_acc / SI per framework")
    print(render_accuracy_table(results))
    wins, mean_delta = _summarize(results)
    print(f"\nFreewayML best on {wins}/{len(results)} datasets; "
          f"mean gap vs baselines {mean_delta * 100:+.2f} points")
    benchmark.extra_info["freewayml_wins"] = wins
    benchmark.extra_info["mean_delta_points"] = round(mean_delta * 100, 2)
    # Shape check: FreewayML wins the majority of datasets.
    assert wins >= len(results) // 2 + 1


def test_table1_streaming_mlp(benchmark, datasets):
    def run():
        return _run_group("mlp", MLP_GROUP, datasets)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Table I (StreamingMLP group): G_acc / SI per framework")
    print(render_accuracy_table(results))
    wins, mean_delta = _summarize(results)
    print(f"\nFreewayML best on {wins}/{len(results)} datasets; "
          f"mean gap vs baselines {mean_delta * 100:+.2f} points")
    benchmark.extra_info["freewayml_wins"] = wins
    benchmark.extra_info["mean_delta_points"] = round(mean_delta * 100, 2)
    assert wins >= len(results) // 2 + 1
