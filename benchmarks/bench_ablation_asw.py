"""Ablation — disorder-driven ASW decay vs time-only decay.

DESIGN.md calls out the ASW's decay rule as a load-bearing design choice:
decay is scaled by each batch's shift-distance rank *and* by the window's
disorder, instead of by age alone.  This ablation trains the
long-granularity model either with the full rule or with rank/disorder
terms disabled (pure uniform decay) and compares accuracy on a
localized-shift-heavy stream, where the rule's data selection matters most.
"""

import numpy as np

from conftest import SEED, print_banner
from repro.core import GranularityLevel
from repro.core.asw import AdaptiveStreamingWindow
from repro.data import ElectricitySimulator
from repro.eval import format_table, model_factory_for

NUM_BATCHES = 60
BATCH_SIZE = 256


class _UniformDecayWindow(AdaptiveStreamingWindow):
    """ASW variant that ignores shift ranks and disorder (time-only decay)."""

    def _decay_against(self, new_embedding):
        self._weights = self._weights * (1.0 - self.base_decay)
        keep = np.flatnonzero(self._weights >= self.min_weight)
        if len(keep) != len(self._entries):
            self._replace_entries(keep)
        self._last_disorder = 0.0


def _run(window):
    generator = ElectricitySimulator(seed=SEED)
    factory = model_factory_for("mlp", generator.num_features,
                                generator.num_classes, lr=0.3)
    level = GranularityLevel(factory(), window_batches=8)
    level.window = window
    accuracies = []
    from repro.shift import WarmupPCA
    pca = WarmupPCA(num_components=2, warmup_points=2)
    for batch in generator.stream(NUM_BATCHES, BATCH_SIZE):
        pca.observe(batch.x)
        embedding = pca.batch_embedding(batch.x)
        if level.trained:
            accuracies.append(float((level.model.predict(batch.x)
                                     == batch.y).mean()))
        level.update(batch.x, batch.y, embedding)
    return float(np.mean(accuracies))


def test_ablation_asw_decay(benchmark):
    def run():
        adaptive = _run(AdaptiveStreamingWindow(max_batches=8,
                                                base_decay=0.12, seed=0))
        uniform = _run(_UniformDecayWindow(max_batches=8,
                                           base_decay=0.12, seed=0))
        return adaptive, uniform

    adaptive, uniform = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Ablation: ASW disorder-driven decay vs time-only decay")
    print(format_table(
        ["variant", "long-model G_acc"],
        [["disorder-driven (paper)", f"{adaptive * 100:.2f}%"],
         ["time-only (ablated)", f"{uniform * 100:.2f}%"]],
    ))
    print(f"\ndelta: {(adaptive - uniform) * 100:+.2f} points")
    benchmark.extra_info["delta_points"] = round(
        (adaptive - uniform) * 100, 2
    )
    # The shift-aware rule should not be worse; it usually helps by keeping
    # the window aligned with the live distribution.
    assert adaptive >= uniform - 0.02
