"""Ablation — the strategy selector vs always-on single mechanisms.

The pipeline's key property (Section V): exactly one mechanism answers per
batch, chosen by the detected pattern.  This ablation forces each mechanism
on for *every* batch and shows that no single mechanism matches the
selector's routing — the ensemble alone misses severe rescues, CEC alone
throws away the trained models, reuse alone has nothing to reuse most of
the time.
"""

import numpy as np

from conftest import SEED, print_banner
from repro.core import Learner, Strategy, StrategyDecision
from repro.data import ElectricitySimulator, NSLKDDSimulator
from repro.eval import format_table, model_factory_for
from repro.shift import ShiftPattern

NUM_BATCHES = 80
BATCH_SIZE = 256


class _ForcedStrategyLearner(Learner):
    """Learner whose selector always picks one fixed strategy."""

    forced: Strategy = Strategy.MULTI_GRANULARITY

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        forced = self.forced

        class _FixedSelector:
            def select(self, assessment, *, knowledge_available,
                       experience_available, ensemble_trained):
                strategy = forced
                if (strategy is Strategy.CEC and not experience_available):
                    strategy = Strategy.MULTI_GRANULARITY
                if (strategy is Strategy.KNOWLEDGE_REUSE
                        and not knowledge_available):
                    strategy = Strategy.MULTI_GRANULARITY
                return StrategyDecision(strategy, assessment.pattern)

        self.selector = _FixedSelector()


def _variant(strategy):
    return type(f"Forced{strategy.name}", (_ForcedStrategyLearner,),
                {"forced": strategy})


def _run(learner_cls, generator_cls):
    generator = generator_cls(seed=SEED)
    factory = model_factory_for("mlp", generator.num_features,
                                generator.num_classes, lr=0.3)
    learner = learner_cls(factory, window_batches=8, seed=SEED)
    accuracies = [
        learner.process(batch).accuracy
        for batch in generator.stream(NUM_BATCHES, BATCH_SIZE)
    ]
    return float(np.mean(accuracies))


def test_ablation_strategy_selector(benchmark):
    variants = {
        "adaptive selector (paper)": Learner,
        "always ensemble": _variant(Strategy.MULTI_GRANULARITY),
        "always CEC": _variant(Strategy.CEC),
        "always reuse": _variant(Strategy.KNOWLEDGE_REUSE),
    }
    generators = {"nsl-kdd": NSLKDDSimulator,
                  "electricity": ElectricitySimulator}

    def run():
        return {
            dataset: {name: _run(cls, generator_cls)
                      for name, cls in variants.items()}
            for dataset, generator_cls in generators.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Ablation: strategy selector vs single-mechanism variants")
    rows = [
        [name] + [f"{results[d][name] * 100:.2f}%" for d in generators]
        for name in variants
    ]
    print(format_table(["variant"] + list(generators), rows))

    for dataset in generators:
        adaptive = results[dataset]["adaptive selector (paper)"]
        always_cec = results[dataset]["always CEC"]
        # Routing must beat naive always-on clustering clearly and be at
        # least as good as any single mechanism (small tolerance for noise).
        best_single = max(v for k, v in results[dataset].items()
                          if k != "adaptive selector (paper)")
        assert adaptive > always_cec
        assert adaptive >= best_single - 0.01, dataset
        benchmark.extra_info[f"adaptive_{dataset}"] = round(adaptive * 100, 2)
