"""Extension bench — FreewayML vs the related-work adaptation families.

The paper's Section II organizes prior work into model adaptation
(T-SaS/SEED-style expert selection), data selection/replay (Camel), and
constrained learning (EWC, GEM/A-GEM).  This bench puts one representative
of each family on the reoccurring-shift workload (NSL-KDD) and compares
overall and per-pattern accuracy against FreewayML.
"""

import numpy as np

from conftest import BATCH_SIZE, SEED, print_banner
from repro.data import NSLKDDSimulator, Pattern
from repro.eval import RunConfig, format_table, run_framework

NUM_BATCHES = 80
FRAMEWORKS = ["plain", "ewc", "a-gem", "camel", "experts", "freewayml"]


def test_related_work_comparison(benchmark):
    config = RunConfig(num_batches=NUM_BATCHES, batch_size=BATCH_SIZE,
                       model="mlp", seed=SEED)

    def run():
        return {
            framework: run_framework(framework, NSLKDDSimulator(seed=SEED),
                                     config)
            for framework in FRAMEWORKS
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner(
        "Related-work families vs FreewayML on NSL-KDD (reoccurring shifts)"
    )
    rows = []
    for framework, result in results.items():
        by_pattern = result.accuracy_by_pattern(skip=2)
        rows.append([
            framework,
            f"{result.g_acc * 100:.2f}%",
            f"{result.si:.3f}",
            f"{by_pattern.get(Pattern.REOCCURRING, float('nan')) * 100:.1f}%",
            f"{by_pattern.get(Pattern.SUDDEN, float('nan')) * 100:.1f}%",
        ])
    print(format_table(
        ["framework", "G_acc", "SI", "reoccurring acc", "sudden acc"], rows
    ))

    freeway = results["freewayml"]
    freeway_reoccurring = freeway.accuracy_by_pattern(skip=2).get(
        Pattern.REOCCURRING, 0.0
    )
    for framework in FRAMEWORKS[:-1]:
        other = results[framework].accuracy_by_pattern(skip=2).get(
            Pattern.REOCCURRING, 0.0
        )
        # FreewayML's knowledge reuse should lead every family on the
        # reoccurring pattern (small tolerance for expert-selection, whose
        # whole design also targets this case).
        assert freeway_reoccurring >= other - 0.05, framework
    benchmark.extra_info["freeway_reoccurring"] = round(
        freeway_reoccurring * 100, 1
    )
    assert freeway.g_acc >= max(r.g_acc for r in results.values()) - 0.02