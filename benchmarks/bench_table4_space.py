"""Table IV — space overhead of historical knowledge vs store size k.

Paper claim (shape): storage grows linearly in k; MLP checkpoints are ~7x
LR checkpoints; even at k=100 the total stays far below 2 MB.

Absolute bytes differ by a constant factor (we store float64 parameters;
the paper's models are float32), so the reproduced claims are linearity,
the LR/MLP ratio, and the "small even at k=100" bound.
"""

import numpy as np

from conftest import print_banner
from repro.core import KnowledgeStore
from repro.eval import format_table
from repro.models import StreamingLR, StreamingMLP

K_VALUES = [1, 5, 10, 40, 100]
NUM_FEATURES = 10
NUM_CLASSES = 2


def _store_with_k(model, k):
    store = KnowledgeStore(capacity=max(k, 1))
    for index in range(k):
        store.preserve(np.zeros(2), model.state_dict(), "long", 0.5, index)
    return store.total_nbytes()


def test_table4_knowledge_space(benchmark):
    lr_model = StreamingLR(num_features=NUM_FEATURES,
                           num_classes=NUM_CLASSES, seed=0)
    mlp_model = StreamingMLP(num_features=NUM_FEATURES,
                             num_classes=NUM_CLASSES, seed=0)

    def run():
        return {
            k: (_store_with_k(lr_model, k), _store_with_k(mlp_model, k))
            for k in K_VALUES
        }

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Table IV: space overhead (KB) of historical knowledge")
    rows = [
        [str(k), f"{lr_bytes / 1024:.1f}", f"{mlp_bytes / 1024:.1f}"]
        for k, (lr_bytes, mlp_bytes) in sizes.items()
    ]
    print(format_table(["k", "LR (KB)", "MLP (KB)"], rows))

    lr_sizes = np.array([sizes[k][0] for k in K_VALUES], dtype=float)
    mlp_sizes = np.array([sizes[k][1] for k in K_VALUES], dtype=float)
    # Linear in k.
    np.testing.assert_allclose(lr_sizes / K_VALUES, lr_sizes[0], rtol=1e-9)
    # MLP entries several times larger than LR entries.
    ratio = mlp_sizes[0] / lr_sizes[0]
    print(f"\nMLP / LR checkpoint size ratio: {ratio:.1f}x")
    assert ratio > 3.0
    # Small even at k=100 (paper: < 2 MB).
    assert mlp_sizes[-1] < 2 * 1024 * 1024
    benchmark.extra_info["mlp_k100_kb"] = round(mlp_sizes[-1] / 1024, 1)
