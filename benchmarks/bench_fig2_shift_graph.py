"""Figure 2 — shift graphs and the accuracy/shift correlation.

Paper claim (shape): reducing batches to 2-D PCA points and chaining them
chronologically reveals distinct movement patterns per dataset, and the
magnitude of consecutive shifts correlates with the *drop* in a streaming
MLP's real-time accuracy (Figure 2d).
"""

import numpy as np

from conftest import BATCH_SIZE, SEED, print_banner
from repro.data import (
    AirlinesSimulator,
    ElectricitySimulator,
    NSLKDDSimulator,
)
from repro.eval import render_series
from repro.models import StreamingMLP
from repro.shift import ShiftGraph

NUM_BATCHES = 80


def _build_graph(generator):
    model = StreamingMLP(num_features=generator.num_features,
                         num_classes=generator.num_classes, lr=0.3, seed=0)
    graph = ShiftGraph(warmup_points=BATCH_SIZE)
    for batch in generator.stream(NUM_BATCHES, BATCH_SIZE):
        accuracy = float((model.predict(batch.x) == batch.y).mean())
        graph.observe(batch.x, accuracy=accuracy)
        model.partial_fit(batch.x, batch.y)
    return graph


def test_fig2_shift_graph_correlation(benchmark):
    generators = [ElectricitySimulator(seed=SEED), NSLKDDSimulator(seed=SEED),
                  AirlinesSimulator(seed=SEED)]

    def run():
        return {generator.name: _build_graph(generator)
                for generator in generators}

    graphs = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Figure 2: shift graphs + accuracy/shift correlation")

    # Write browsable SVG renderings of each graph.
    from pathlib import Path

    from repro.eval import save_svg, shift_graph_svg
    artifact_dir = Path(__file__).resolve().parent.parent / "artifacts"
    for name, graph in graphs.items():
        svg = shift_graph_svg(graph.points, accuracies=graph.accuracies,
                              title=f"shift graph: {name}")
        save_svg(svg, artifact_dir / f"fig2_{name}.svg")
    print(f"(SVG renderings written to {artifact_dir}/fig2_*.svg)")

    correlations = {}
    for name, graph in graphs.items():
        correlation = graph.accuracy_shift_correlation()
        correlations[name] = correlation
        accuracies = [a for a in graph.accuracies if a is not None]
        print(f"\n--- {name}")
        print(render_series("shift size", graph.shift_magnitudes))
        print(render_series("accuracy", accuracies))
        network = graph.to_networkx()
        print(f"  corr(shift, accuracy drop) = {correlation:+.3f}   "
              f"graph: {network.number_of_nodes()} nodes / "
              f"{network.number_of_edges()} edges")
        benchmark.extra_info[f"corr_{name}"] = round(correlation, 3)

    # Shape check: the Figure 2d correlation is positive on every dataset.
    assert all(value > 0.2 for value in correlations.values()), correlations
