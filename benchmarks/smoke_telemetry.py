"""Telemetry-plane smoke check — scrape a live run end to end.

CI's ``obs`` job runs this script.  It drives a short distributed stream
with the live telemetry plane attached, scrapes ``/metrics``, ``/health``
and ``/snapshot`` over real HTTP while batches flow, validates the
exposition with the bundled Prometheus parser, and asserts that the
coordinator registry carries worker-labelled series aggregated from the
process-backend replicas::

    PYTHONPATH=src python benchmarks/smoke_telemetry.py

It then exercises the CLI wiring itself: ``python -m repro run
--serve-telemetry --json`` must ship an SLO summary in its payload.

The process-backend stage is skip-guarded: on platforms without the fork
start method or on single-CPU runners it falls back to the thread
backend (the aggregation path is identical; only transport differs).
"""

import argparse
import json
import os
import subprocess
import sys
import urllib.request

from conftest import SEED, print_banner
from repro.data import ElectricitySimulator
from repro.distributed import DistributedLearner, ProcessBackend
from repro.eval import model_factory_for
from repro.obs import (
    CompositeSink,
    Observability,
    SloEngine,
    TelemetryServer,
    default_slo_rules,
    parse_prometheus_text,
)

NUM_BATCHES = 12
BATCH_SIZE = 128
NUM_WORKERS = 2

_GENERATOR = ElectricitySimulator(seed=SEED)


def _factory():
    return model_factory_for("lr", _GENERATOR.num_features,
                             _GENERATOR.num_classes, lr=0.3)


def _scrape(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.read()


def _pick_backend(choice: str):
    if choice == "process" or (
            choice == "auto" and ProcessBackend.available()
            and (os.cpu_count() or 1) >= 2):
        return ProcessBackend(max_restarts=1), "process"
    return "thread", "thread"


def live_scrape(backend_choice: str = "auto") -> None:
    backend, backend_name = _pick_backend(backend_choice)
    if backend_name != "process":
        print("NOTE: fork backend unavailable or single CPU — "
              "falling back to the thread backend")
    obs = Observability.in_memory()
    engine = SloEngine(default_slo_rules(), obs)
    obs.sink = CompositeSink(obs.sink, engine)
    learner = DistributedLearner(_factory(), num_workers=NUM_WORKERS,
                                 backend=backend, window_batches=8,
                                 seed=SEED, obs=obs)
    engine.bind(learner)
    batches = _GENERATOR.stream(NUM_BATCHES, BATCH_SIZE).materialize()
    mid_run_families = 0
    try:
        with TelemetryServer(obs, engine,
                             health_source=learner.summary) as server:
            print(f"serving    : {server.url}")
            for index, batch in enumerate(batches):
                report = learner.process(batch)
                engine.observe_report(report)
                if index == NUM_BATCHES // 2:
                    live = parse_prometheus_text(
                        _scrape(f"{server.url}/metrics").decode())
                    mid_run_families = len(live)
            families = parse_prometheus_text(
                _scrape(f"{server.url}/metrics").decode())
            health = json.loads(_scrape(f"{server.url}/health"))
            snapshot = json.loads(_scrape(f"{server.url}/snapshot"))
    finally:
        learner.close()

    assert mid_run_families > 0, "mid-run scrape returned no families"
    assert "freeway_batches_total" in families
    totals = {tuple(sorted(labels.items())): value
              for name, labels, value
              in families["freeway_batches_total"]["samples"]}
    assert sum(totals.values()) == NUM_BATCHES * NUM_WORKERS
    workers = {dict(key).get("worker") for key in totals}
    assert workers == {str(i) for i in range(NUM_WORKERS)}, (
        f"expected worker-labelled series for every replica, got {workers}")
    assert health["status"] in ("ok", "alerting", "degraded")
    assert "slo" in health and health["slo"]["tick"] == NUM_BATCHES
    assert snapshot["kind"] == "snapshot"
    assert any(record["kind"] == "event" for record in snapshot["records"])
    print(f"backend    : {backend_name}")
    print(f"families   : {len(families)} (mid-run: {mid_run_families})")
    print(f"workers    : {sorted(workers)}")
    print(f"health     : {health['status']}")
    print(f"snapshot   : {len(snapshot['records'])} records, "
          f"alerts tick {snapshot['alerts']['tick']}")


def cli_round_trip() -> None:
    command = [sys.executable, "-m", "repro", "run",
               "--framework", "freewayml", "--dataset", "electricity",
               "--batches", "6", "--batch-size", "128",
               "--serve-telemetry", "--json"]
    src = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       os.pardir, "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p)
    result = subprocess.run(command, capture_output=True, text=True,
                            timeout=300, env=env, check=True)
    payload = json.loads(result.stdout)
    assert "slo" in payload, "run --serve-telemetry --json must report SLO"
    assert payload["slo"]["tick"] == 6
    assert "telemetry :" in result.stderr, "server URL not announced"
    print(f"cli slo    : {payload['slo']['raised_total']} raised / "
          f"{payload['slo']['resolved_total']} resolved")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--backend", choices=("auto", "process", "thread"),
                        default="auto",
                        help="override the skip-guarded backend choice")
    args = parser.parse_args()
    print_banner("Telemetry smoke — live scrape of a distributed run")
    live_scrape(args.backend)
    print_banner("Telemetry smoke — CLI --serve-telemetry round trip")
    cli_round_trip()
    print("\nOK")


if __name__ == "__main__":
    main()
