"""Table III — per-batch update/inference latency vs batch size.

Paper claim (shape): latency grows ~linearly with batch size for every
framework; FreewayML's LR latency is the lowest of its group (the ASW and
disorder bookkeeping are cheap), and its MLP latency stays close to River's
while Camel (data selection) and A-GEM (reference gradients) pay visible
overheads.

Absolute microseconds differ from the paper (numpy substrate vs the
authors' testbed); the ordering and scaling are the reproduced shape.
"""

import numpy as np
import pytest

from conftest import print_banner
from repro.baselines import make_baseline
from repro.core import Learner
from repro.data import HyperplaneGenerator
from repro.eval import model_factory_for

BATCH_SIZES = [512, 1024, 2048, 4096]
LR_FRAMEWORKS = ["flink-ml", "spark-mllib", "alink", "freewayml"]
MLP_FRAMEWORKS = ["river", "camel", "a-gem", "freewayml"]
WARM_BATCHES = 6


def _prepare(framework, model, batch_size):
    """Build a warmed-up learner plus cycling evaluation batches.

    Latency is measured over *distinct* batches: repeatedly predicting the
    same batch would feed zero shift distances into FreewayML's detector
    and measure an unrealistic code path.
    """
    import itertools

    generator = HyperplaneGenerator(seed=0)
    batches = generator.stream(WARM_BATCHES + 8, batch_size).materialize()
    factory = model_factory_for(model, generator.num_features, 2, lr=0.3)
    pool = itertools.cycle(batches[WARM_BATCHES:])
    if framework == "freewayml":
        learner = Learner(factory, window_batches=4, seed=0)
        for batch in batches[:WARM_BATCHES]:
            learner.process(batch)
        return (lambda: learner.predict(next(pool).x),
                lambda: learner.update(*(lambda b: (b.x, b.y))(next(pool))))
    baseline = make_baseline(framework, factory)
    for batch in batches[:WARM_BATCHES]:
        baseline.partial_fit(batch.x, batch.y)
    return (lambda: baseline.predict(next(pool).x),
            lambda: baseline.partial_fit(*(lambda b: (b.x, b.y))(next(pool))))


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("model,framework", [
    *[("lr", name) for name in LR_FRAMEWORKS],
    *[("mlp", name) for name in MLP_FRAMEWORKS],
])
def test_table3_update_latency(benchmark, model, framework, batch_size):
    _, update = _prepare(framework, model, batch_size)
    benchmark.pedantic(update, rounds=5, iterations=1, warmup_rounds=1)
    benchmark.extra_info.update(
        phase="update", model=model, framework=framework,
        batch_size=batch_size,
    )


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("model,framework", [
    *[("lr", name) for name in LR_FRAMEWORKS],
    *[("mlp", name) for name in MLP_FRAMEWORKS],
])
def test_table3_infer_latency(benchmark, model, framework, batch_size):
    infer, _ = _prepare(framework, model, batch_size)
    benchmark.pedantic(infer, rounds=5, iterations=1, warmup_rounds=1)
    benchmark.extra_info.update(
        phase="infer", model=model, framework=framework,
        batch_size=batch_size,
    )


def test_table3_summary(benchmark):
    """One-shot summary table in the paper's layout (mean µs per batch)."""
    import time

    import numpy as np

    def run():
        table = {}
        for model, frameworks in (("lr", LR_FRAMEWORKS),
                                  ("mlp", MLP_FRAMEWORKS)):
            for framework in frameworks:
                for batch_size in BATCH_SIZES:
                    infer, update = _prepare(framework, model, batch_size)
                    for phase, fn in (("infer", infer), ("update", update)):
                        fn()  # warm
                        samples = []
                        for _ in range(5):
                            start = time.perf_counter()
                            fn()
                            samples.append(time.perf_counter() - start)
                        # Median: robust to scheduler noise under load.
                        micros = float(np.median(samples)) * 1e6
                        table[(model, phase, framework, batch_size)] = micros
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Table III: latency (µs) per batch")
    for model, frameworks in (("lr", LR_FRAMEWORKS), ("mlp", MLP_FRAMEWORKS)):
        for phase in ("update", "infer"):
            print(f"\n{model.upper()}_{phase}")
            header = f"{'framework':>12s}" + "".join(
                f"{size:>10d}" for size in BATCH_SIZES
            )
            print(header)
            for framework in frameworks:
                cells = "".join(
                    f"{table[(model, phase, framework, size)]:>10.0f}"
                    for size in BATCH_SIZES
                )
                print(f"{framework:>12s}{cells}")
    # Shape checks: latency grows with batch size for the plain framework,
    # and FreewayML inference stays within a small factor of the cheapest
    # baseline.  Thresholds carry slack — wall-clock medians still jitter
    # when the whole harness runs in parallel.
    assert (table[("lr", "update", "flink-ml", 4096)]
            > 0.8 * table[("lr", "update", "flink-ml", 512)])
    cheapest = min(table[("mlp", "infer", name, 1024)]
                   for name in MLP_FRAMEWORKS if name != "freewayml")
    assert table[("mlp", "infer", "freewayml", 1024)] < 8 * cheapest


def test_table3_stage_breakdown(benchmark):
    """Per-stage breakdown: where FreewayML's batch latency actually goes.

    Runs FreewayML with the observability tracer enabled and reports
    mean/p50/p95 wall time per pipeline stage (shift assessment, strategy
    routing, ensemble inference, level updates, CEC, knowledge reuse) —
    Table III's totals, decomposed.
    """
    from repro.obs import Observability

    def run():
        obs = Observability.in_memory()
        generator = HyperplaneGenerator(seed=0)
        learner = Learner(model_factory_for(
            "mlp", generator.num_features, 2, lr=0.3,
        ), window_batches=4, seed=0, obs=obs)
        for batch in generator.stream(WARM_BATCHES + 24, 1024):
            learner.process(batch)
        durations: dict[str, list[float]] = {}
        for root in obs.tracer.finished:
            for span in root.walk():
                durations.setdefault(span.name, []).append(span.duration)
        return {
            name: {
                "n": len(samples),
                "mean_us": float(np.mean(samples)) * 1e6,
                "p50_us": float(np.percentile(samples, 50)) * 1e6,
                "p95_us": float(np.percentile(samples, 95)) * 1e6,
            }
            for name, samples in durations.items()
        }

    stages = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Table III addendum: FreewayML per-stage latency (µs)")
    print(f"{'stage':>26s}{'n':>6s}{'mean':>10s}{'p50':>10s}{'p95':>10s}")
    for name in sorted(stages):
        stats = stages[name]
        print(f"{name:>26s}{stats['n']:>6d}{stats['mean_us']:>10.0f}"
              f"{stats['p50_us']:>10.0f}{stats['p95_us']:>10.0f}")
    # Every processed batch produces a predict and an update span, and the
    # stages nested under predict cannot exceed their parent on average.
    assert stages["learner.predict"]["n"] == WARM_BATCHES + 24
    assert stages["learner.update"]["n"] == WARM_BATCHES + 24
    assert "shift.assess" in stages
    assert (stages["shift.assess"]["mean_us"]
            < stages["learner.predict"]["mean_us"])
