"""Extension bench — distributed FreewayML scalability (Section VII).

The paper's future work: "optimize the scalability of FreewayML and
enhance its performance in distributed computing environments."  This
bench sweeps the simulated worker count and reports (a) G_acc — the
accuracy cost of sharding each batch W ways with periodic parameter
averaging — and (b) the ideal parallel speedup implied by the per-worker
compute (upper bound a real deployment could reach).
"""

import numpy as np

from conftest import SEED, print_banner
from repro.data import ElectricitySimulator
from repro.distributed import DistributedLearner
from repro.eval import format_table, model_factory_for

WORKER_COUNTS = [1, 2, 4, 8]
NUM_BATCHES = 50
BATCH_SIZE = 512


def _run(num_workers):
    generator = ElectricitySimulator(seed=SEED)
    factory = model_factory_for("mlp", generator.num_features,
                                generator.num_classes, lr=0.3)
    distributed = DistributedLearner(factory, num_workers=num_workers,
                                     sync_every=1, window_batches=8,
                                     seed=SEED)
    accuracies = []
    speedups = []
    for batch in generator.stream(NUM_BATCHES, BATCH_SIZE):
        report = distributed.process(batch)
        accuracies.append(report.accuracy)
        speedups.append(report.ideal_speedup)
    return float(np.mean(accuracies)), float(np.mean(speedups))


def test_distributed_scalability(benchmark):
    def run():
        return {workers: _run(workers) for workers in WORKER_COUNTS}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Extension: distributed FreewayML scalability")
    rows = [
        [str(workers), f"{accuracy * 100:.2f}%", f"{speedup:.1f}x"]
        for workers, (accuracy, speedup) in results.items()
    ]
    print(format_table(["workers", "G_acc", "ideal speedup"], rows))

    single_accuracy = results[1][0]
    eight_accuracy, eight_speedup = results[8]
    print(f"\naccuracy cost at 8 workers: "
          f"{(single_accuracy - eight_accuracy) * 100:+.2f} points; "
          f"ideal speedup {eight_speedup:.1f}x")
    benchmark.extra_info["acc_cost_8w_points"] = round(
        (single_accuracy - eight_accuracy) * 100, 2
    )
    # Shape: parallelism scales while accuracy degrades gracefully.
    assert eight_speedup > 3.0
    assert eight_accuracy > single_accuracy - 0.10