"""Extension bench — distributed FreewayML scalability (Section VII).

The paper's future work: "optimize the scalability of FreewayML and
enhance its performance in distributed computing environments."  Two
modes:

As a pytest benchmark (``pytest benchmarks/bench_distributed.py``) it
sweeps the simulated worker count on the serial backend and reports
(a) G_acc — the accuracy cost of sharding each batch W ways with periodic
parameter averaging — and (b) the ideal parallel speedup implied by the
per-worker compute.

As a script it measures *real* wall-clock throughput on a chosen
execution backend and compares it against the serial reference::

    PYTHONPATH=src python benchmarks/bench_distributed.py \
        --backend process --workers 4

The serial backend reproduces the legacy loop bit for bit, so the script
also verifies the backend's accuracy sequence matches serial exactly.
Real speedup needs real cores: on a single-CPU host the parallel backends
can only pay IPC overhead, so the script reports ``os.cpu_count()``
alongside the ratio.
"""

import argparse
import os
import time

import numpy as np

from conftest import SEED, print_banner
from repro.data import ElectricitySimulator
from repro.distributed import DistributedLearner
from repro.eval import format_table, model_factory_for, summarize_reports

WORKER_COUNTS = [1, 2, 4, 8]
NUM_BATCHES = 50
BATCH_SIZE = 512


def _make_distributed(num_workers, backend="serial", sync_every=1):
    generator = ElectricitySimulator(seed=SEED)
    factory = model_factory_for("mlp", generator.num_features,
                                generator.num_classes, lr=0.3)
    distributed = DistributedLearner(factory, num_workers=num_workers,
                                     sync_every=sync_every, window_batches=8,
                                     seed=SEED, backend=backend)
    return generator, distributed


def _run(num_workers):
    generator, distributed = _make_distributed(num_workers)
    accuracies = []
    speedups = []
    for batch in generator.stream(NUM_BATCHES, BATCH_SIZE):
        report = distributed.process(batch)
        accuracies.append(report.accuracy)
        speedups.append(report.ideal_speedup)
    return float(np.mean(accuracies)), float(np.mean(speedups))


def test_distributed_scalability(benchmark):
    def run():
        return {workers: _run(workers) for workers in WORKER_COUNTS}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("Extension: distributed FreewayML scalability")
    rows = [
        [str(workers), f"{accuracy * 100:.2f}%", f"{speedup:.1f}x"]
        for workers, (accuracy, speedup) in results.items()
    ]
    print(format_table(["workers", "G_acc", "ideal speedup"], rows))

    single_accuracy = results[1][0]
    eight_accuracy, eight_speedup = results[8]
    print(f"\naccuracy cost at 8 workers: "
          f"{(single_accuracy - eight_accuracy) * 100:+.2f} points; "
          f"ideal speedup {eight_speedup:.1f}x")
    benchmark.extra_info["acc_cost_8w_points"] = round(
        (single_accuracy - eight_accuracy) * 100, 2
    )
    # Shape: parallelism scales while accuracy degrades gracefully.
    assert eight_speedup > 3.0
    assert eight_accuracy > single_accuracy - 0.10


# -- script mode: wall-clock throughput per execution backend -----------------


def _wall_clock_run(backend, num_workers, num_batches, batch_size,
                    sync_every):
    """One timed end-to-end run; returns (summary dict, accuracy list)."""
    generator, distributed = _make_distributed(
        num_workers, backend=backend, sync_every=sync_every
    )
    batches = generator.stream(num_batches, batch_size).materialize()
    start = time.perf_counter()
    reports = distributed.run(iter(batches))
    elapsed = time.perf_counter() - start
    distributed.close()
    summary = summarize_reports(reports)
    summary["wall_s"] = elapsed
    summary["wall_throughput"] = summary["items"] / max(elapsed, 1e-12)
    return summary, [r.accuracy for r in reports]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="wall-clock distributed throughput by execution backend"
    )
    parser.add_argument("--backend", default="serial",
                        choices=["serial", "thread", "process"])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--batches", type=int, default=NUM_BATCHES)
    parser.add_argument("--batch-size", type=int, default=BATCH_SIZE,
                        dest="batch_size")
    parser.add_argument("--sync-every", type=int, default=1,
                        dest="sync_every",
                        help="batches between parameter-averaging rounds")
    parser.add_argument("--quick", action="store_true",
                        help="small smoke-test workload (CI)")
    args = parser.parse_args(argv)
    if args.quick:
        args.batches = min(args.batches, 12)
        args.batch_size = min(args.batch_size, 256)

    print_banner(
        f"Distributed wall-clock throughput — backend={args.backend}, "
        f"workers={args.workers} (host has {os.cpu_count()} CPUs)"
    )
    runs = [("serial", *_wall_clock_run("serial", args.workers, args.batches,
                                        args.batch_size, args.sync_every))]
    if args.backend != "serial":
        runs.append((args.backend,
                     *_wall_clock_run(args.backend, args.workers,
                                      args.batches, args.batch_size,
                                      args.sync_every)))
    rows = [
        [name, f"{summary['accuracy'] * 100:.2f}%",
         f"{summary['wall_s']:.2f}s",
         f"{summary['wall_throughput'] / 1e3:.1f}",
         f"{summary['latency_p95_s'] * 1e3:.1f}ms"]
        for name, summary, _ in runs
    ]
    print(format_table(
        ["backend", "G_acc", "wall", "K items/s", "p95 latency"], rows
    ))

    serial_summary, serial_accuracies = runs[0][1], runs[0][2]
    if args.backend != "serial":
        backend_summary, backend_accuracies = runs[1][1], runs[1][2]
        speedup = (backend_summary["wall_throughput"]
                   / max(serial_summary["wall_throughput"], 1e-12))
        identical = serial_accuracies == backend_accuracies
        print(f"\n{args.backend} vs serial: {speedup:.2f}x wall-clock; "
              f"accuracy sequence identical to serial: {identical}")
        if not identical:
            print("ERROR: backend diverged from the serial reference")
            return 1
        cpus = os.cpu_count() or 1
        if cpus >= 2 and speedup < 1.0:
            print(f"WARNING: no speedup despite {cpus} CPUs")
    else:
        print(f"\nserial reference G_acc "
              f"{serial_summary['accuracy'] * 100:.2f}% over "
              f"{serial_summary['batches']} batches")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
